"""Generate EXPERIMENTS.md from the benchmark result JSONs.

Run after ``pytest benchmarks/ --benchmark-only``:

    python -m repro.bench.experiments_md [results_dir] [output_md]

The document records paper-vs-measured for every table and figure,
using the exact numbers the benchmarks saved.
"""

from __future__ import annotations

import json
import os
import sys

import numpy as np

from repro.bench.paper_data import CLAIMS, TABLE2, TABLE3

__all__ = ["write_experiments_md"]

MIB = 1024 * 1024


def _load(results_dir: str, name: str):
    path = os.path.join(results_dir, f"{name}.json")
    if not os.path.exists(path):
        return None
    with open(path) as fh:
        return json.load(fh)


def _fmt_ms(value) -> str:
    return "DNR" if value is None else f"{value:.3f}"


def _mean(values) -> float:
    return float(np.mean(values)) if values else float("nan")


def write_experiments_md(results_dir: str, output_path: str) -> None:
    """Assemble the paper-vs-measured report."""
    lines: list[str] = []
    w = lines.append

    w("# EXPERIMENTS — paper vs measured")
    w("")
    w("Every table and figure of the paper's evaluation, reproduced by a")
    w("benchmark in `benchmarks/` on the **1/2048-scaled** suite and")
    w("devices (see DESIGN.md for the substitution rationale).  Numbers")
    w("below are regenerated from `benchmarks/results/*.json`; re-run")
    w("`pytest benchmarks/ --benchmark-only` followed by")
    w("`python -m repro.bench.experiments_md` to refresh them.")
    w("")
    w("**Reading guide.** Runtimes are *simulated milliseconds* on the")
    w("scaled device (≈ paper milliseconds / 2048); the comparisons that")
    w("matter are the *ratios*, which the analytic model preserves.  One")
    w("systematic artifact: 32-bit CSR ids are oversized for the")
    w("miniature universes, so absolute compression ratios inflate")
    w("~1.4-1.8x across *all* compressed formats; category orderings and")
    w("format-vs-format comparisons are unaffected.")
    w("")

    # ----- Table I ---------------------------------------------------
    tab1 = _load(results_dir, "tab1")
    w("## Table I — bandwidth characteristics")
    w("")
    if tab1:
        w("| device | DtoD | HtoD | ratio | paper |")
        w("|---|---|---|---|---|")
        for r in tab1:
            paper = "417.4 / 12.1 GB/s (~35x)" if "Titan" in r["gpu"] else \
                "731.3 GiB/s / 12.1 GB/s (~60x)"
            w(f"| {r['gpu']} | {r['dtod_bw_gbs']:.1f} GB/s | "
              f"{r['htod_bw_gbs']:.1f} GB/s | {r['bandwidth_ratio']:.1f}x | "
              f"{paper} |")
        w("")
        w(f"PCIe 32-bit traversal ceiling: {tab1[0]['pcie_peak_gteps_32bit']:.2f} "
          f"GTEPS (paper: {CLAIMS['pcie_peak_gteps_32bit']}).")
    w("")

    # ----- Fig. 1 ----------------------------------------------------
    fig1 = _load(results_dir, "fig1")
    w("## Fig. 1 — CSR BFS GTEPS vs graph size (three regions)")
    w("")
    if fig1:
        w("| graph | CSR MiB | region | GTEPS |")
        w("|---|---|---|---|")
        for r in fig1:
            w(f"| {r['name']} | {r['csr_bytes'] / MIB:.2f} | {r['region']} | "
              f"{r['gteps']:.2f} |")
        by: dict[int, list[float]] = {}
        for r in fig1:
            by.setdefault(r["region"], []).append(r["gteps"])
        r1 = _mean(by.get(1, []))
        r23 = _mean(by.get(2, []) + by.get(3, []))
        w("")
        w(f"**Shape:** region 1 averages {r1:.1f} GTEPS; regions 2/3 average "
          f"{r23:.1f} GTEPS — the paper's sharp cliff at the capacity "
          f"boundary, with every out-of-core point below the "
          f"{CLAIMS['pcie_peak_gteps_32bit']}-GTEPS PCIe ceiling.")
    w("")

    # ----- Fig. 8 ----------------------------------------------------
    fig8 = _load(results_dir, "fig8")
    w("## Fig. 8 — compression ratio over CSR")
    w("")
    if fig8:
        w("| category | EFG | CGR | Ligra+(TD) | paper shape |")
        w("|---|---|---|---|---|")
        shapes = {
            "social": "EFG best",
            "web": "CGR best (intervals), Ligra+ second",
            "other": "EFG best",
        }
        for cat in ("social", "web", "other"):
            sub = [r for r in fig8 if r["category"] == cat]
            w(f"| {cat} | {_mean([r['efg_ratio'] for r in sub]):.2f} | "
              f"{_mean([r['cgr_ratio'] for r in sub]):.2f} | "
              f"{_mean([r['ligra_ratio'] for r in sub]):.2f} | "
              f"{shapes[cat]} |")
        w(f"| **overall** | {_mean([r['efg_ratio'] for r in fig8]):.2f} | "
          f"{_mean([r['cgr_ratio'] for r in fig8]):.2f} | "
          f"{_mean([r['ligra_ratio'] for r in fig8]):.2f} | "
          f"paper: 1.55 / 1.65 / 1.59 |")
        efg = np.array([r["efg_ratio"] for r in fig8])
        cgr = np.array([r["cgr_ratio"] for r in fig8])
        w("")
        w(f"**Consistency (the paper's EFG selling point):** EFG's "
          f"coefficient of variation {efg.std() / efg.mean():.2f} vs CGR's "
          f"{cgr.std() / cgr.mean():.2f} — EFG compresses uniformly, CGR "
          f"swings with run content.  Absolute levels inflate at miniature "
          f"scale (see reading guide); the category ordering matches the "
          f"paper exactly.")
    w("")

    # ----- Table II / Fig. 9 -----------------------------------------
    tab2 = _load(results_dir, "tab2")
    w("## Table II — BFS on the scaled Titan Xp")
    w("")
    if tab2:
        paper_by_name = {r.name: r for r in TABLE2}
        from repro.bench.harness import SCALED_TITAN_XP

        cap = SCALED_TITAN_XP.memory_bytes
        w("| graph | CSR MiB | CSR ms | CGR ms | EFG ms | Lg+TD ms | "
          "paper (CSR/CGR/EFG/Lg+ ms) |")
        w("|---|---|---|---|---|---|---|")
        for r in tab2:
            p = paper_by_name.get(r["name"])
            paper_cell = (
                f"{p.csr_ms:.0f} / "
                f"{'DNR' if p.cgr_ms is None else f'{p.cgr_ms:.0f}'} / "
                f"{p.efg_ms:.0f} / {p.ligra_ms:.0f}"
                if p else "-"
            )
            w(f"| {r['name']} | {r['csr_bytes'] / MIB:.2f} | "
              f"{_fmt_ms(r['csr_ms'])} | {_fmt_ms(r['cgr_ms'])} | "
              f"{_fmt_ms(r['efg_ms'])} | {_fmt_ms(r['ligra_ms'])} | "
              f"{paper_cell} |")
        in_mem = [r for r in tab2 if r["csr_bytes"] < 0.8 * cap]
        out_mem = [r for r in tab2 if r["csr_bytes"] > cap]
        cgr_ratios = [r["cgr_ms"] / r["efg_ms"] for r in tab2 if r["cgr_ms"]]
        w("")
        w("**Headline ratios (measured vs paper):**")
        w("")
        w("| claim | paper | measured |")
        w("|---|---|---|")
        w(f"| EFG vs CSR, graphs fit | {CLAIMS['efg_in_memory_vs_csr']}x | "
          f"{_mean([r['efg_ms'] and r['csr_ms'] / r['efg_ms'] for r in in_mem]):.2f}x |")
        lo, hi = CLAIMS["efg_vs_oocore_csr_speedup"]
        w(f"| EFG vs out-of-core CSR | {lo}-{hi}x | "
          f"{_mean([r['csr_ms'] / r['efg_ms'] for r in out_mem]):.2f}x "
          f"(range {min(r['csr_ms'] / r['efg_ms'] for r in out_mem):.1f}-"
          f"{max(r['csr_ms'] / r['efg_ms'] for r in out_mem):.1f}) |")
        lo, hi = CLAIMS["efg_vs_cgr_speedup"]
        w(f"| EFG vs CGR | {lo}-{hi}x | {_mean(cgr_ratios):.2f}x |")
        w(f"| cugraph vs Ligra+(TD), small graphs | 6.7x | "
          f"{_mean([r['ligra_ms'] / r['csr_ms'] for r in in_mem]):.1f}x |")
        w("")
        w("Note: the paper's CGR DNR entries (com-frndster, kron_27_sym, "
          "moliere-16) *run* here because miniature-scale CGR "
          "over-compresses and squeezes under the scaled capacity; the "
          "DNR logic itself is exercised in "
          "`tests/bench` and triggers whenever CGR exceeds device memory.")
    w("")

    fig9 = _load(results_dir, "fig9")
    w("## Fig. 9 — BFS relative to CSR")
    w("")
    if fig9:
        w("| graph | CGR | EFG | Ligra+ |")
        w("|---|---|---|---|")
        for r in fig9:
            cells = [
                "DNR" if r[f"{f}_vs_csr"] is None else f"{r[f'{f}_vs_csr']:.2f}x"
                for f in ("cgr", "efg", "ligra")
            ]
            w(f"| {r['name']} | {cells[0]} | {cells[1]} | {cells[2]} |")
        w("")
        w("**Shape:** below 1x for every format while CSR fits; EFG jumps "
          "to ~4-6x past the capacity boundary, always ahead of CGR — "
          "the paper's Fig. 9 exactly.")
    w("")

    # ----- Fig. 10 ----------------------------------------------------
    fig10 = _load(results_dir, "fig10")
    w("## Fig. 10 — SSSP with streamed weights")
    w("")
    if fig10:
        w("| graph | region | CSR GTEPS | EFG GTEPS | EFG/CSR |")
        w("|---|---|---|---|---|")
        for r in fig10:
            w(f"| {r['name']} | {r.get('region', '-')} | "
              f"{r['csr_gteps']:.2f} | {r['efg_gteps']:.2f} | "
              f"{r['csr_ms'] / r['efg_ms']:.2f}x |")
        adv = [r for r in fig10 if r.get("region") in (2, 4)]
        par = [r for r in fig10 if r.get("region") in (1, 3)]
        w("")
        w(f"**Shape:** near parity where residency matches (region 1/3: "
          f"{_mean([r['csr_ms'] / r['efg_ms'] for r in par]):.2f}x; paper "
          f"~1x), EFG ahead where it keeps more resident (regions 2/4: "
          f"{_mean([r['csr_ms'] / r['efg_ms'] for r in adv]):.2f}x; paper "
          f"{CLAIMS['sssp_region2_speedup']}x / "
          f"{CLAIMS['sssp_region4_speedup']}x).")
    w("")

    # ----- Fig. 11 ----------------------------------------------------
    fig11 = _load(results_dir, "fig11")
    w("## Fig. 11 — PageRank (50-iteration cap)")
    w("")
    if fig11:
        w("| graph | CSR GTEPS | EFG GTEPS |")
        w("|---|---|---|")
        for r in fig11:
            w(f"| {r['name']} | {r['csr_gteps']:.2f} | {r['efg_gteps']:.2f} |")
        w("")
        w("**Shape:** CSR ahead while it fits (as in the paper's Fig. 11); "
          "once CSR spills it pins at the PCIe ceiling (~3 GTEPS) while "
          "EFG keeps device-bandwidth throughput.")
    w("")

    # ----- Fig. 12 ----------------------------------------------------
    fig12 = _load(results_dir, "fig12")
    w("## Fig. 12 — reordering: compression and runtime")
    w("")
    if fig12:
        w("| graph | ordering | EFG x | CGR x | Lg+ x | EFG ms | CGR ms |")
        w("|---|---|---|---|---|---|---|")
        for r in fig12:
            w(f"| {r['name']} | {r['ordering']} | {r['efg_ratio']:.2f} | "
              f"{r['cgr_ratio']:.2f} | {r['ligra_ratio']:.2f} | "
              f"{r['efg_ms']:.3f} | {r['cgr_ms']:.3f} |")
        by = {(r["name"], r["ordering"]): r for r in fig12}
        sk_o, sk_r = by[("sk-05", "orig")], by[("sk-05", "random")]
        tw_o, tw_b = by[("twitter", "orig")], by[("twitter", "bp")]
        w("")
        w("**Shapes (paper claims in parentheses):**")
        w(f"- EFG compression ordering-independent: worst drift "
          f"{max(abs(r['efg_ratio'] - by[(r['name'], 'orig')]['efg_ratio']) / by[(r['name'], 'orig')]['efg_ratio'] for r in fig12) * 100:.1f}% "
          f"(paper: 'virtually unchanged', random included).")
        w(f"- Random ordering destroys gap codes on structured graphs: "
          f"sk-05 CGR {sk_o['cgr_ratio']:.2f} -> {sk_r['cgr_ratio']:.2f} "
          f"(-{(1 - sk_r['cgr_ratio'] / sk_o['cgr_ratio']) * 100:.0f}%; "
          f"paper: 18-32% loss).")
        w(f"- BP improves gap codes where the base order is unoptimised: "
          f"twitter CGR {tw_o['cgr_ratio']:.2f} -> {tw_b['cgr_ratio']:.2f} "
          f"(+{(tw_b['cgr_ratio'] / tw_o['cgr_ratio'] - 1) * 100:.0f}%; "
          f"paper: 9-15%).  (Our web generator's crawl order is already "
          f"near-optimal, so BP's gain shows from the scrambled state — "
          f"`bp_from_random`.)")
        w(f"- Random ordering slows every format at runtime (sk-05 EFG "
          f"{sk_o['efg_ms']:.3f} -> {sk_r['efg_ms']:.3f} ms; paper: "
          f"0.65-0.8x across formats).")
    w("")

    # ----- Table III ---------------------------------------------------
    tab3 = _load(results_dir, "tab3")
    w("## Table III — BFS on the scaled V100")
    w("")
    if tab3:
        paper_by_name = {r.name: r for r in TABLE3}
        from repro.bench.harness import SCALED_V100

        cap3 = SCALED_V100.memory_bytes
        w("| graph | CSR MiB | CSR ms | CGR ms | EFG ms | paper (CSR/CGR/EFG ms) |")
        w("|---|---|---|---|---|---|")
        for r in tab3:
            p = paper_by_name.get(r["name"])
            paper_cell = (
                f"{p.csr_ms:.0f} / "
                f"{'DNR' if p.cgr_ms is None else f'{p.cgr_ms:.0f}'} / "
                f"{p.efg_ms:.0f}" if p else "-"
            )
            w(f"| {r['name']} | {r['csr_bytes'] / MIB:.2f} | "
              f"{_fmt_ms(r['csr_ms'])} | {_fmt_ms(r['cgr_ms'])} | "
              f"{_fmt_ms(r['efg_ms'])} | {paper_cell} |")
        in3 = [r for r in tab3 if r["csr_bytes"] < 0.8 * cap3]
        out3 = [r for r in tab3 if r["csr_bytes"] > cap3]
        w("")
        w(f"**Shape:** mid-size graphs return in-memory (EFG "
          f"{_mean([r['csr_ms'] / r['efg_ms'] for r in in3]):.2f}x of CSR; "
          f"paper {CLAIMS['v100_efg_in_memory_vs_csr']}x) while the kron_28/29 "
          f"class still spills, where the larger ~60x bandwidth gap lifts "
          f"EFG's win to "
          f"{_mean([r['csr_ms'] / r['efg_ms'] for r in out3]):.2f}x (paper "
          f"{CLAIMS['v100_efg_vs_oocore_csr']}x); EFG vs CGR "
          f"{_mean([r['cgr_ms'] / r['efg_ms'] for r in tab3 if r['cgr_ms']]):.2f}x "
          f"(paper {CLAIMS['v100_efg_vs_cgr']}x).")
    w("")

    # ----- ablations ----------------------------------------------------
    w("## Ablations and extensions")
    w("")
    fs = _load(results_dir, "frontier_sort")
    if fs:
        w(f"**Sec. VI-E partial frontier sort:** measured expand/filter "
          f"traffic shrinks by {(_mean([r['traffic_saving'] for r in fs]) - 1) * 100:.1f}% "
          f"on average (max {(max(r['traffic_saving'] for r in fs) - 1) * 100:.1f}%); "
          f"runtime is {_mean([r['speedup'] for r in fs]):.3f}x (paper: "
          f"+9% avg, +33% max).  The simulator's max-overlap model hides "
          f"memory-side gains whenever the decode-instruction bound binds — "
          f"see docs/model.md — so the traffic column carries the paper's "
          f"mechanism here.")
        w("")
    ct = _load(results_dir, "compression_time")
    if ct:
        w(f"**Sec. VIII-F compression time (real wall clock):** CGR's "
          f"encoder is {_mean([r['cgr_vs_efg'] for r in ct]):.1f}x slower "
          f"than EFG's vectorized encode, Ligra+ "
          f"{_mean([r['ligra_vs_efg'] for r in ct]):.1f}x (paper: minutes "
          f"for EFG/Ligra+, 30-45 min for CGR).")
        w("")
    pef = _load(results_dir, "pef")
    if pef:
        gains = {r["name"]: r["pef_gain"] for r in pef}
        w(f"**Sec. IX partitioned EF:** {gains.get('web-longrun', 0):.2f}x "
          f"over plain EF on run-dominated lists (the paper's motivating "
          f"case), {gains.get('sk-05', 0):.2f}x on the scaled sk-05 "
          f"(short runs ≈ break-even), {gains.get('urnd_26', 0):.2f}x on "
          f"random lists (skip-metadata overhead only).  The Sec. IX toy "
          f"sequence [0..n-2, u-1] compresses ~500x (see "
          f"`examples/web_graph_compression.py`).")
        w("")
    q = _load(results_dir, "quantum")
    if q:
        w(f"**Forward-pointer quantum sweep:** storage falls monotonically "
          f"from k=32 ({q[0]['efg_bytes']:,} B) to k=1024 "
          f"({q[-1]['efg_bytes']:,} B); at the paper's k=512 the pointer "
          f"overhead is already negligible.")
        w("")
    do = _load(results_dir, "direction_opt")
    if do:
        w(f"**Sec. VII direction-optimizing BFS:** hybrid examines "
          f"{_mean([r['edge_saving'] for r in do['runs']]):.1f}x fewer edges "
          f"on symmetrised graphs, but in-edges for a directed graph cost "
          f"{do['storage']['overhead']:.2f}x storage — the paper's reason "
          f"to compare top-down only.")
        w("")
    uvm = _load(results_dir, "uvm")
    if uvm:
        w(f"**Sec. II UVM vs zero-copy:** demand paging migrates "
          f"{_mean([r['uvm_penalty'] for r in uvm]):.1f}x more bytes than "
          f"zero-copy streams for the same out-of-core BFS accesses — why "
          f"the paper (and EMOGI) stream at cacheline granularity.")
        w("")
    qw = _load(results_dir, "quantized_weights")
    if qw:
        flipped = [r for r in qw
                   if r["q8_weights_resident"] and not r["f32_weights_resident"]]
        if flipped:
            w(f"**Weight compression (the Sec. VI-F out-of-scope item):** "
              f"8-bit codebook weights (4x smaller) flip residency on "
              f"{', '.join(r['name'] for r in flipped)} for a "
              f"{max(r['speedup'] for r in flipped):.1f}x SSSP speedup at "
              f"max distance error "
              f"{max(r['max_distance_error'] for r in qw):.3f}.")
            w("")
    ds = _load(results_dir, "delta_stepping")
    if ds:
        w(f"**Delta-stepping SSSP (extension):** "
          f"{_mean([r['relaxation_saving'] for r in ds['runs']]):.1f}x fewer "
          f"edge relaxations than the paper's frontier relaxation at "
          f"identical distances; the delta sweep shows the classic "
          f"bucket-count / redundant-work trade-off.")
        w("")
    mg = _load(results_dir, "multigpu")
    if mg:
        w(f"**Intro: compression vs multi-GPU.** On out-of-core graphs, "
          f"1-GPU EFG runs {_mean([r['efg_speedup'] for r in mg]):.1f}x "
          f"faster than 1-GPU CSR while 2-GPU partitioned CSR gets "
          f"{_mean([r['gpu2_speedup'] for r in mg]):.1f}x — compression "
          f"recovers most of the second GPU's benefit for free, and on "
          f"the exchange-bound social graph (com-frndster) 1-GPU EFG "
          f"beats 2-GPU CSR outright.")
        w("")
    bv = _load(results_dir, "bv")
    if bv:
        bb = {r["name"]: r for r in bv}
        w(f"**Sec. VII BV comparator:** BV beats EFG on the web graph "
          f"({bb['sk-05']['bv_ratio']:.2f}x vs "
          f"{bb['sk-05']['efg_ratio']:.2f}x) but not on social/random "
          f"graphs — and has no GPU decode path at all (reference chains), "
          f"which is the paper's point in positioning EFG.")
        w("")

    with open(output_path, "w") as fh:
        fh.write("\n".join(lines) + "\n")


def main(argv: list[str] | None = None) -> int:
    """CLI entry: ``python -m repro.bench.experiments_md``."""
    args = argv if argv is not None else sys.argv[1:]
    results_dir = args[0] if len(args) > 0 else "benchmarks/results"
    output = args[1] if len(args) > 1 else "EXPERIMENTS.md"
    write_experiments_md(results_dir, output)
    print(f"wrote {output} from {results_dir}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
