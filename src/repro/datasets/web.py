"""Web-graph-like generator: strong id locality and long runs.

Real web graphs (sk-05, uk-07, gsh) crawled in URL order have two
properties that drive the paper's compression results (Sec. VIII-A,
Sec. IX):

* neighbours cluster near the source id (links stay on-site), and
* long runs of *consecutive* ids are common (navigation bars, index
  pages linking page k, k+1, k+2, ...).

Interval/gap codes (CGR, Ligra+) exploit both; plain Elias-Fano only
benefits from the smaller per-list universe.  The generator plants
exactly that structure: each vertex draws a few runs of consecutive
ids inside a narrow locality window around itself plus a handful of
uniform long-range links.
"""

from __future__ import annotations

import numpy as np

from repro.formats.graph import Graph

__all__ = ["web_graph"]


def web_graph(
    num_nodes: int,
    avg_degree: float,
    locality_window: int | None = None,
    run_fraction: float = 0.75,
    mean_run_length: int = 8,
    seed: int = 0,
    name: str = "",
) -> Graph:
    """Generate a web-like directed graph.

    Parameters
    ----------
    num_nodes:
        Vertex count (think: pages in crawl order).
    avg_degree:
        Average out-degree (degrees are lognormal-skewed around it).
    locality_window:
        Width of the id neighbourhood links land in (default
        ``max(64, num_nodes // 64)``).
    run_fraction:
        Fraction of each list generated as consecutive runs.
    mean_run_length:
        Geometric mean length of those runs.
    """
    if num_nodes <= 2:
        raise ValueError(f"need at least 3 nodes, got {num_nodes}")
    if not 0 <= run_fraction <= 1:
        raise ValueError(f"run_fraction must be in [0, 1], got {run_fraction}")
    rng = np.random.default_rng(seed)
    if locality_window is None:
        locality_window = max(64, num_nodes // 64)

    # Lognormal out-degrees (web out-degree distributions are skewed
    # but lighter-tailed than social in-degrees).  The mean is shifted
    # by -sigma^2/2 so E[degree] lands on avg_degree rather than
    # avg_degree * exp(sigma^2 / 2).
    sigma = 0.9
    mu = np.log(max(avg_degree, 1.0)) - sigma * sigma / 2
    raw = rng.lognormal(mean=mu, sigma=sigma, size=num_nodes)
    degrees = np.minimum(raw.astype(np.int64) + 1, num_nodes - 1)

    run_quota = (degrees * run_fraction).astype(np.int64)
    rand_quota = degrees - run_quota

    src_parts: list[np.ndarray] = []
    dst_parts: list[np.ndarray] = []

    # --- consecutive runs inside the locality window (vectorized) ---
    # Each vertex draws ceil(quota / mean_run_length) runs.
    num_runs = np.maximum(1, -(-run_quota // mean_run_length))
    num_runs[run_quota == 0] = 0
    total_runs = int(num_runs.sum())
    if total_runs:
        run_owner = np.repeat(np.arange(num_nodes, dtype=np.int64), num_runs)
        run_len = rng.geometric(1.0 / mean_run_length, size=total_runs).astype(
            np.int64
        )
        # Run start: near the owner, within the window.
        offset = rng.integers(
            -locality_window, locality_window, size=total_runs, dtype=np.int64
        )
        run_start = np.clip(run_owner + offset, 0, num_nodes - 1)
        run_len = np.minimum(run_len, num_nodes - run_start)
        total_run_edges = int(run_len.sum())
        edge_owner = np.repeat(run_owner, run_len)
        starts = np.repeat(run_start, run_len)
        ex = np.zeros(total_run_edges, dtype=np.int64)
        pos = np.cumsum(run_len)[:-1]
        local = np.arange(total_run_edges, dtype=np.int64)
        base = np.zeros(total_run_edges, dtype=np.int64)
        base[pos] = run_len[:-1]
        local = local - np.cumsum(base)
        del ex
        src_parts.append(edge_owner)
        dst_parts.append(starts + local)

    # --- scattered long-range links ---
    total_rand = int(rand_quota.sum())
    if total_rand:
        owner = np.repeat(np.arange(num_nodes, dtype=np.int64), rand_quota)
        # 70% within the window; the rest cross-site, and cross-site
        # links follow a Zipf popularity law — real web graphs have a
        # power-law *in*-degree (portals, index pages), which is what
        # creates the enormous hub lists of the symmetrised variants.
        near = rng.random(total_rand) < 0.7
        off = rng.integers(-locality_window, locality_window, size=total_rand)
        near_dst = np.clip(owner + off, 0, num_nodes - 1)
        rank = rng.zipf(1.4, size=total_rand)
        far_dst = np.minimum(rank - 1, num_nodes - 1).astype(np.int64)
        # Spread hub ids over the id space deterministically so
        # popularity does not correlate with crawl position.
        far_dst = (far_dst * np.int64(2654435761)) % num_nodes
        src_parts.append(owner)
        dst_parts.append(np.where(near, near_dst, far_dst))

    src = np.concatenate(src_parts)
    dst = np.concatenate(dst_parts)
    keep = src != dst
    return Graph.from_edges(
        src[keep], dst[keep], num_nodes=num_nodes, directed=True, name=name
    )
