"""The scaled-down Table II / Table III graph suite.

Each entry mirrors one dataset of the paper with |V| and |E| divided by
:data:`SCALE_FACTOR` (2048), the category-matched generator, and the
same directed/symmetrised structure.  The simulated device is scaled by
the same factor, so every graph lands in the memory region (fits /
fits-compressed / never-fits) it occupied on the real Titan Xp or V100.

Build results are memoised per process — generation is deterministic in
the entry's seed, so repeated benchmark invocations see identical
graphs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.datasets.random_graph import uniform_random_graph
from repro.datasets.rmat import GRAPH500_PARAMS, SOCIAL_PARAMS, rmat_graph
from repro.datasets.web import web_graph
from repro.formats.graph import Graph

__all__ = ["SCALE_FACTOR", "SuiteEntry", "suite_entries", "build_suite_graph"]

#: Everything (graph sizes, device capacity, launch overhead) shrinks
#: by this factor relative to the paper.
SCALE_FACTOR = 2048


@dataclass(frozen=True)
class SuiteEntry:
    """One dataset of the paper's evaluation.

    ``paper_nodes`` / ``paper_edges`` are the Table II/III numbers;
    ``category`` groups Fig. 8 (social / web / other); ``sym_of`` marks
    the ``_sym`` variants built by symmetrising their base graph.
    """

    name: str
    category: str
    kind: str
    paper_nodes: float  # millions
    paper_edges: float  # billions
    directed: bool
    seed: int
    sym_of: str | None = None
    v100_only: bool = False

    @property
    def scaled_nodes(self) -> int:
        """|V| after scaling."""
        return max(64, int(self.paper_nodes * 1e6 / SCALE_FACTOR))

    @property
    def scaled_edges(self) -> int:
        """|E| after scaling."""
        return max(256, int(self.paper_edges * 1e9 / SCALE_FACTOR))


_ENTRIES: tuple[SuiteEntry, ...] = (
    SuiteEntry("scc-lj", "social", "social", 4.85, 0.0689, True, 11),
    SuiteEntry("scc-lj_sym", "social", "social", 4.85, 0.08622, False, 11, sym_of="scc-lj"),
    SuiteEntry("orkut", "social", "social", 3.07, 0.2343, False, 12),
    SuiteEntry("urnd_26", "other", "urnd", 67.1, 1.07, True, 13),
    SuiteEntry("twitter", "social", "social", 41.6, 1.47, True, 14),
    SuiteEntry("web-cc-fl", "web", "web", 80.76, 1.77, True, 15),
    SuiteEntry("gsh-15-h", "web", "web", 68.66, 1.80, True, 16),
    SuiteEntry("sk-05", "web", "web", 65.61, 1.95, True, 17),
    SuiteEntry("web-cc-host", "web", "web", 89.11, 2.03, True, 18),
    SuiteEntry("kron_27", "other", "kron", 63.07, 2.12, True, 19),
    SuiteEntry("urnd_26_sym", "other", "urnd", 67.1, 2.14, False, 13, sym_of="urnd_26"),
    SuiteEntry("twitter_sym", "social", "social", 41.6, 2.40, False, 14, sym_of="twitter"),
    SuiteEntry("gsh-15-h_sym", "web", "web", 68.66, 3.05, False, 16, sym_of="gsh-15-h"),
    SuiteEntry("web-cc-fl_sym", "web", "web", 80.76, 3.39, False, 15, sym_of="web-cc-fl"),
    SuiteEntry("com-frndster", "social", "social", 65.61, 3.61, False, 20),
    SuiteEntry("sk-05_sym", "web", "web", 65.61, 3.64, False, 17, sym_of="sk-05"),
    SuiteEntry("uk-07-05", "web", "web", 105.22, 3.74, True, 21),
    SuiteEntry("web-cc-h_sym", "web", "web", 89.11, 3.87, False, 18, sym_of="web-cc-host"),
    SuiteEntry("kron_27_sym", "other", "kron", 63.07, 4.22, False, 19, sym_of="kron_27"),
    SuiteEntry("moliere-16", "other", "bio", 30.22, 6.68, False, 22),
    # Table III additions (V100 scaling experiment).
    SuiteEntry("kron_28_sym", "other", "kron", 121.23, 8.47, False, 23, v100_only=True),
    SuiteEntry("kron_29", "other", "kron", 232.99, 8.53, True, 24, v100_only=True),
)

_CACHE: dict[str, Graph] = {}


def suite_entries(include_v100: bool = False) -> tuple[SuiteEntry, ...]:
    """All Table II entries, optionally with the Table III additions."""
    if include_v100:
        return _ENTRIES
    return tuple(e for e in _ENTRIES if not e.v100_only)


def _entry(name: str) -> SuiteEntry:
    for e in _ENTRIES:
        if e.name == name:
            return e
    raise KeyError(f"unknown suite graph {name!r}")


def _trim_to_target(graph: Graph, target_edges: int, seed: int) -> Graph:
    """Uniformly subsample arcs so |E| lands on the Table II target.

    Generators overshoot their edge budget by design (dedup losses are
    compensated by oversampling); trimming back keeps every suite
    graph's CSR byte size faithful to its scaled paper row — which is
    what decides its memory region.
    """
    excess = graph.num_edges - target_edges
    if excess <= 0:
        return graph
    rng = np.random.default_rng(seed ^ 0x5EED)
    keep = np.ones(graph.num_edges, dtype=bool)
    keep[rng.choice(graph.num_edges, size=excess, replace=False)] = False
    src = np.repeat(np.arange(graph.num_nodes, dtype=np.int64), graph.degrees)
    return Graph.from_edges(
        src[keep], graph.elist[keep], num_nodes=graph.num_nodes,
        directed=graph.directed, name=graph.name,
    )


def _trim_sym_to_target(graph: Graph, target_edges: int, seed: int) -> Graph:
    """Trim a symmetrised graph to its target arc count, pairwise.

    Removes whole undirected edges (both arcs) so the result stays
    symmetric.  Needed because symmetrising our synthetic bases roughly
    doubles them, while the paper's real graphs contain reciprocal
    edges and grow less.
    """
    excess_pairs = (graph.num_edges - target_edges) // 2
    if excess_pairs <= 0:
        return graph
    src = np.repeat(np.arange(graph.num_nodes, dtype=np.int64), graph.degrees)
    dst = graph.elist
    forward = src < dst
    fwd_idx = np.flatnonzero(forward)
    rng = np.random.default_rng(seed ^ 0xC0FFEE)
    drop = rng.choice(fwd_idx, size=min(excess_pairs, fwd_idx.shape[0]),
                      replace=False)
    drop_keys = set(zip(src[drop].tolist(), dst[drop].tolist()))
    keep = np.ones(graph.num_edges, dtype=bool)
    keep[drop] = False
    # Drop the reverse arcs of the removed pairs.
    rev = np.flatnonzero(~forward & (src != dst))
    rev_mask = np.array(
        [(d, s) in drop_keys for s, d in zip(src[rev], dst[rev])], dtype=bool
    )
    keep[rev[rev_mask]] = False
    return Graph.from_edges(
        src[keep], dst[keep], num_nodes=graph.num_nodes, directed=False,
        name=graph.name,
    )


def _generate(entry: SuiteEntry) -> Graph:
    """Generate the (directed base of the) entry's graph."""
    nv = entry.scaled_nodes
    ne = entry.scaled_edges
    if entry.kind in ("social", "kron"):
        params = SOCIAL_PARAMS if entry.kind == "social" else GRAPH500_PARAMS
        scale = max(6, round(math.log2(nv)))
        # Oversample 25% to absorb dedup/self-loop losses, then trim.
        graph = rmat_graph(
            scale, 1.4 * ne / (1 << scale), params, seed=entry.seed,
            name=entry.name,
        )
        return _trim_to_target(graph, ne, entry.seed)
    if entry.kind == "web":
        # Random arc trimming punches holes in the consecutive-id runs
        # web compression depends on, so calibrate the requested degree
        # against the generator's measured overshoot first and keep the
        # final exactness trim tiny (a couple of percent).
        graph = web_graph(nv, ne / nv, seed=entry.seed, name=entry.name)
        ratio = graph.num_edges / ne
        if ratio > 1.02:
            graph = web_graph(
                nv, ne / nv / ratio, seed=entry.seed, name=entry.name
            )
        return _trim_to_target(graph, ne, entry.seed)
    if entry.kind == "urnd":
        graph = uniform_random_graph(
            nv, int(1.05 * ne), seed=entry.seed, name=entry.name
        )
        return _trim_to_target(graph, ne, entry.seed)
    if entry.kind == "bio":
        # moliere-like: very high average degree, mild locality.
        graph = web_graph(
            nv, 1.4 * ne / nv, run_fraction=0.2, mean_run_length=3,
            locality_window=max(64, nv // 8), seed=entry.seed, name=entry.name,
        )
        return _trim_to_target(graph, ne, entry.seed)
    raise ValueError(f"unknown generator kind {entry.kind!r}")


def build_suite_graph(name: str) -> Graph:
    """Build (or fetch memoised) one suite graph by its paper name."""
    if name in _CACHE:
        return _CACHE[name]
    entry = _entry(name)
    if entry.sym_of is not None:
        base = build_suite_graph(entry.sym_of)
        graph = base.symmetrized()
        graph = _trim_sym_to_target(graph, entry.scaled_edges, entry.seed)
        graph.name = entry.name
    else:
        graph = _generate(entry)
    _CACHE[name] = graph
    return graph
