"""R-MAT / Kronecker graph generator (Graph500-style).

Recursive-matrix sampling: each edge picks one quadrant per scale level
with probabilities (a, b, c, d).  The Graph500 parameters
(0.57, 0.19, 0.19, 0.05) produce the heavy power-law degree skew of the
paper's ``kron_2x`` graphs; milder parameters approximate social
networks.  Fully vectorized: all edges draw all levels at once.
"""

from __future__ import annotations

import numpy as np

from repro.formats.graph import Graph

__all__ = ["rmat_graph", "GRAPH500_PARAMS", "SOCIAL_PARAMS"]

#: Graph500 reference parameters (kron_* graphs).
GRAPH500_PARAMS = (0.57, 0.19, 0.19, 0.05)

#: Milder skew approximating social networks (LiveJournal/orkut-like).
SOCIAL_PARAMS = (0.45, 0.22, 0.22, 0.11)


def rmat_graph(
    scale: int,
    edge_factor: float,
    params: tuple[float, float, float, float] = GRAPH500_PARAMS,
    seed: int = 0,
    directed: bool = True,
    name: str = "",
    permute_ids: bool = True,
) -> Graph:
    """Generate an R-MAT graph with ``2**scale`` vertices.

    Parameters
    ----------
    scale:
        log2 of the vertex count.
    edge_factor:
        Average edges per vertex (before dedup).
    params:
        Quadrant probabilities (a, b, c, d); must sum to 1.
    permute_ids:
        Randomly relabel vertices (the Graph500 convention) so that id
        order carries no structure; the reordering study then shows how
        much a good ordering recovers.
    """
    if scale <= 0 or scale > 30:
        raise ValueError(f"scale must be in [1, 30], got {scale}")
    a, b, c, d = params
    if not np.isclose(a + b + c + d, 1.0):
        raise ValueError(f"R-MAT params must sum to 1, got {params}")
    rng = np.random.default_rng(seed)
    nv = 1 << scale
    ne = int(round(edge_factor * nv))

    src = np.zeros(ne, dtype=np.int64)
    dst = np.zeros(ne, dtype=np.int64)
    # Per level, choose the quadrant for every edge at once.
    for level in range(scale):
        bit = np.int64(1 << (scale - 1 - level))
        r1 = rng.random(ne)
        r2 = rng.random(ne)
        # Row bit set with probability (c + d); the column bit's
        # probability is conditional on the chosen row half.
        row_one = r1 < (c + d)
        col_prob = np.where(row_one, d / (c + d), b / (a + b))
        col_one = r2 < col_prob
        src += bit * row_one
        dst += bit * col_one
    # Drop self loops; dedup happens in Graph.from_edges.
    keep = src != dst
    src, dst = src[keep], dst[keep]
    if permute_ids:
        perm = rng.permutation(nv)
        src, dst = perm[src], perm[dst]
    return Graph.from_edges(src, dst, num_nodes=nv, directed=directed, name=name)
