"""Uniform random graphs (the paper's ``urnd_26`` family).

Every edge picks source and destination uniformly — no degree skew, no
locality, no run structure.  This is the case Elias-Fano likes best
relative to gap codes (Sec. VIII-A: EFG beats CGR/Ligra+ on "other"
graphs) and the natural control for the reordering study (random
graphs cannot be improved by reordering).
"""

from __future__ import annotations

import numpy as np

from repro.formats.graph import Graph

__all__ = ["uniform_random_graph"]


def uniform_random_graph(
    num_nodes: int,
    num_edges: int,
    seed: int = 0,
    directed: bool = True,
    name: str = "",
) -> Graph:
    """Erdős–Rényi-style G(n, m) multigraph sample (deduped)."""
    if num_nodes <= 1:
        raise ValueError(f"need at least 2 nodes, got {num_nodes}")
    if num_edges < 0:
        raise ValueError(f"negative edge count: {num_edges}")
    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_nodes, size=num_edges, dtype=np.int64)
    dst = rng.integers(0, num_nodes, size=num_edges, dtype=np.int64)
    keep = src != dst
    return Graph.from_edges(
        src[keep], dst[keep], num_nodes=num_nodes, directed=directed, name=name
    )
