"""Synthetic dataset generators and the scaled-down paper suite.

The paper evaluates web, social, biological and synthetic graphs of
68.9 M - 6.68 B edges (Table II).  Without those datasets we generate
category-matched synthetic graphs scaled down by a fixed factor, with
the *properties the experiments react to* preserved:

* **social** — R-MAT power-law degree skew, weak locality;
* **web** — heavy id-locality with long runs of consecutive
  neighbours (what interval/gap codes exploit, Fig. 8);
* **uniform random** (``urnd``) — no structure at all;
* **kron** — Graph500-style Kronecker, extreme skew;
* **bio** — high average degree, mild clustering (moliere-like).

The simulated device capacity is scaled by the same factor
(:meth:`repro.gpusim.DeviceSpec.scaled`), so each graph lands in the
same memory region it occupied in the paper.
"""

from repro.datasets.random_graph import uniform_random_graph
from repro.datasets.rmat import rmat_graph
from repro.datasets.suite import (
    SCALE_FACTOR,
    SuiteEntry,
    build_suite_graph,
    suite_entries,
)
from repro.datasets.web import web_graph

__all__ = [
    "rmat_graph",
    "uniform_random_graph",
    "web_graph",
    "SuiteEntry",
    "suite_entries",
    "build_suite_graph",
    "SCALE_FACTOR",
]
