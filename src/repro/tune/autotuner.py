"""What-if-driven autotuner: shortlist analytically, confirm sparsely.

The naive knob search re-runs the workload once per grid point.  The
what-if engine (PR 7) makes most of those runs redundant: a recorded
baseline can be re-priced under a candidate knob setting in
microseconds, and for the *exact* knobs the prediction equals an
actual re-run bit-for-bit.  So the tuner runs each workload exactly
once to record a baseline, prices the whole candidate panel
analytically, and spends real re-runs only on the shortlisted winners
— confirmation, not search.

Every confirmation doubles as a verification of the cost model's
contract, and the tuner is deliberately unforgiving about it:

* an **exact** prediction (overlap toggle on a cluster) that does not
  match its confirming re-run bit-for-bit raises
  :class:`TuneBoundError` — that would be a replay bug, not noise;
* an **estimate** (wire-codec swap, decode-cache budget) outside its
  documented relative bound (:data:`WIRE_REL_BOUND`,
  :data:`CACHE_GROW_REL_BOUND` / :data:`CACHE_SHRINK_REL_BOUND`, the
  PR 7 test-pinned tolerances) raises too.

Raised, not ``assert``-ed: the bounds must hold under ``python -O``
(the CI tune-smoke job runs exactly that).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.whatif import (
    WhatIfResult,
    rank_cluster_whatifs,
    replay_cluster_seconds,
    replay_engine_seconds,
    whatif_cache,
    whatif_cluster,
)

__all__ = [
    "CACHE_GROW_REL_BOUND",
    "CACHE_SHRINK_REL_BOUND",
    "WIRE_REL_BOUND",
    "TuneBoundError",
    "TuneResult",
    "TuneTrial",
    "tune_cluster",
    "tune_engine",
]

#: Relative tolerance of a wire-codec-swap estimate vs its confirming
#: re-run.  The estimate rescales each tier's step maxima by the
#: codec's recorded aggregate trial bytes; the re-run re-encodes per
#: message, so per-message skew (headers, short-list shapes) moves the
#: max-over-GPUs step terms.  PR 7 pins swap-to-*own*-codec at 2%;
#: cross-codec swaps carry that skew on top, so the tuner's pinned
#: confirmation bound is 10% — the same tolerance as the cache-shrink
#: estimate (observed: ~2% for ef/varint, up to ~8% for bitmap, whose
#: per-message size depends strongly on id spread).
WIRE_REL_BOUND = 0.10

#: Relative tolerance of a cache-budget estimate when *growing* the
#: budget (PR 7 pins 2%: the ghost-LRU hit model is near-exact when
#: every recorded hit stays a hit).
CACHE_GROW_REL_BOUND = 0.02

#: ... and when *shrinking* it (PR 7 pins 10%: modeled eviction order
#: under a smaller budget diverges more from the simulated one).
CACHE_SHRINK_REL_BOUND = 0.10


class TuneBoundError(RuntimeError):
    """A what-if prediction broke its exactness/tolerance contract."""


@dataclass(frozen=True)
class TuneTrial:
    """One shortlisted candidate: prediction plus confirming re-run."""

    name: str
    #: The knob deltas this trial applies (persistable config form).
    config: dict
    predicted_seconds: float
    confirmed_seconds: float
    #: True when the prediction was contractually bit-exact.
    exact: bool

    @property
    def rel_err(self) -> float:
        """Relative prediction error vs the confirming re-run."""
        if self.confirmed_seconds <= 0.0:
            return 0.0
        return (
            abs(self.predicted_seconds - self.confirmed_seconds)
            / self.confirmed_seconds
        )


@dataclass(frozen=True)
class TuneResult:
    """The outcome of tuning one workload."""

    workload: str
    baseline_config: dict
    baseline_seconds: float
    trials: tuple[TuneTrial, ...]
    #: Knob deltas of the winner (empty when the baseline won).
    best_config: dict
    best_seconds: float

    @property
    def improved(self) -> bool:
        """Did any confirmed candidate beat the baseline?"""
        return self.best_seconds < self.baseline_seconds

    @property
    def speedup(self) -> float:
        """Baseline seconds over the winner's confirmed seconds."""
        if self.best_seconds <= 0.0:
            return 1.0
        return self.baseline_seconds / self.best_seconds

    def entry(self, source_seed: int) -> dict:
        """The persistable tuned-config entry (store schema).

        ``config`` is the full effective configuration (baseline merged
        with the winner's deltas), so appliers need not reconstruct the
        tuning baseline to reproduce the winner.
        """
        effective = {**self.baseline_config, **self.best_config}
        return {
            "config": dict(sorted(effective.items())),
            "baseline_config": dict(sorted(self.baseline_config.items())),
            "baseline_seconds": self.baseline_seconds,
            "confirmed_seconds": self.best_seconds,
            "speedup": self.speedup,
            "trials": len(self.trials),
            "source_seed": source_seed,
        }

    def report(self) -> str:
        """Human-readable tuning story for the CLI."""
        lines = [
            f"tune {self.workload}: baseline "
            f"{self.baseline_seconds * 1e3:.4f} ms "
            f"({_fmt_config(self.baseline_config) or 'defaults'})"
        ]
        for t in self.trials:
            tag = "exact" if t.exact else f"est, err {t.rel_err:.2%}"
            lines.append(
                f"  {t.name}: predicted {t.predicted_seconds * 1e3:.4f} ms, "
                f"confirmed {t.confirmed_seconds * 1e3:.4f} ms ({tag})"
            )
        if self.improved:
            lines.append(
                f"  winner: {_fmt_config(self.best_config)} — "
                f"{self.best_seconds * 1e3:.4f} ms, "
                f"{self.speedup:.2f}x over baseline"
            )
        else:
            lines.append("  winner: baseline (no candidate beat it)")
        return "\n".join(lines)


def _fmt_config(config: dict) -> str:
    return ",".join(f"{k}={v}" for k, v in sorted(config.items()))


def _check_trial(trial: TuneTrial, bound: float) -> None:
    """Enforce the prediction contract of one confirmed trial."""
    if trial.exact:
        if trial.predicted_seconds != trial.confirmed_seconds:
            raise TuneBoundError(
                f"{trial.name}: exact what-if predicted "
                f"{trial.predicted_seconds!r} but the re-run measured "
                f"{trial.confirmed_seconds!r} (must match bit-for-bit)"
            )
    elif trial.rel_err > bound:
        raise TuneBoundError(
            f"{trial.name}: estimate off by {trial.rel_err:.2%} "
            f"(bound {bound:.0%}): predicted "
            f"{trial.predicted_seconds!r}, measured "
            f"{trial.confirmed_seconds!r}"
        )


# -- distributed workloads ------------------------------------------------


def _drive_cluster(cluster, algo: str, source: int, weights) -> None:
    if algo == "bfs":
        from repro.dist.bfs import distributed_bfs

        distributed_bfs(cluster, source)
    elif algo == "sssp":
        from repro.dist.sssp import distributed_sssp

        distributed_sssp(cluster, source, weights)
    else:
        from repro.dist.pagerank import distributed_pagerank

        distributed_pagerank(cluster)


def tune_cluster(
    graph,
    algo: str,
    device,
    gpus: int,
    nodes: int = 1,
    fmt: str = "efg",
    wire: str = "raw",
    schedule: str | None = None,
    overlap: bool = False,
    link_gbs: float = 10.0,
    inter_gbs: float = 1.0,
    contention: float = 0.5,
    source_seed: int = 42,
    weight_seed: int = 1,
    max_confirm: int = 4,
) -> TuneResult:
    """Tune one distributed workload's wire codec and overlap setting.

    Records one baseline run with per-codec wire trials, shortlists
    the actionable entries of :func:`rank_cluster_whatifs` (codec
    swaps and the overlap toggle — bandwidth scenarios describe the
    machine, not a config), prices each shortlisted setting with
    :func:`whatif_cluster`, and re-runs only those for confirmation.
    A combined codec+overlap candidate is added when both move the
    needle individually.

    Raises :class:`TuneBoundError` when any prediction breaks its
    contract (see module docstring).
    """
    from repro.bench.harness import pick_sources
    from repro.dist.cluster import ShardedCluster
    from repro.recipes.runner import build_topology, make_weights
    from repro.tune.store import workload_key

    if schedule is None:
        schedule = "hierarchical" if nodes > 1 else "flat"
    source = 0
    if algo != "pagerank":
        source = int(pick_sources(graph, 1, seed=source_seed)[0])
    weights = make_weights(graph, weight_seed) if algo == "sssp" else None

    def run(wire_: str, overlap_: bool, record: bool):
        cluster = ShardedCluster.build(
            graph,
            gpus,
            device,
            fmt=fmt,
            wire=wire_,
            schedule=schedule,
            topology=build_topology(
                nodes, gpus, device, link_gbs, inter_gbs, contention
            ),
            with_weights=algo == "sssp",
            overlap=overlap_,
            record_wire=record,
        )
        _drive_cluster(cluster, algo, source, weights)
        return cluster

    baseline_cluster = run(wire, overlap, record=True)
    baseline = baseline_cluster.clock
    replayed = replay_cluster_seconds(baseline_cluster)
    if replayed != baseline:
        raise TuneBoundError(
            f"self-replay drifted: {replayed!r} != clock {baseline!r}"
        )

    # Shortlist: the ranked panel's *configurable* scenarios that
    # predict an improvement.  The baseline codec's own swap predicts
    # ~1.0x and is skipped with the rest.
    candidates: list[dict] = []
    wire_wins: list[str] = []
    overlap_win: bool | None = None
    for r in rank_cluster_whatifs(baseline_cluster):
        if r.speedup <= 1.0:
            continue
        if r.name.startswith("wire "):
            codec = r.name[len("wire "):]
            if codec != wire:
                candidates.append({"wire": codec})
                wire_wins.append(codec)
        elif r.name.startswith("overlap "):
            overlap_win = r.name.endswith(" on")
            candidates.append({"overlap": overlap_win})
    if wire_wins and overlap_win is not None:
        candidates.append({"wire": wire_wins[0], "overlap": overlap_win})
    candidates = candidates[: max(max_confirm, 0)]

    trials: list[TuneTrial] = []
    for config in candidates:
        sets = {k: str(v) for k, v in config.items()}
        pred = whatif_cluster(baseline_cluster, sets)
        confirm = run(
            str(config.get("wire", wire)),
            bool(config.get("overlap", overlap)),
            record=False,
        )
        trial = TuneTrial(
            name=pred.name,
            config=config,
            predicted_seconds=pred.predicted_seconds,
            confirmed_seconds=confirm.clock,
            exact=pred.exact,
        )
        _check_trial(trial, WIRE_REL_BOUND)
        trials.append(trial)

    best_config: dict = {}
    best_seconds = baseline
    for t in trials:
        if t.confirmed_seconds < best_seconds:
            best_seconds = t.confirmed_seconds
            best_config = t.config
    return TuneResult(
        workload=workload_key(algo, fmt, nodes, gpus),
        baseline_config={
            "wire": wire, "schedule": schedule, "overlap": overlap,
        },
        baseline_seconds=baseline,
        trials=tuple(trials),
        best_config=best_config,
        best_seconds=best_seconds,
    )


# -- single-GPU workloads -------------------------------------------------

#: Candidate budget multipliers tried around the baseline cache size.
BUDGET_LADDER = (0.25, 0.5, 2.0, 4.0, 8.0)


def tune_engine(
    graph,
    device,
    quantum: int | None = None,
    cache_kb: int = 4,
    num_sources: int = 6,
    source_seed: int = 42,
    max_confirm: int = 2,
) -> TuneResult:
    """Tune the decode-cache budget of a repeated-BFS EFG workload.

    The workload is a loop of BFS traversals from ``num_sources``
    distinct start vertices — the concurrent-query pattern where hub
    lists are re-decoded and a decoded-list cache pays off (a single
    traversal touches each list once and caching is pointless by
    construction).  The baseline records the ghost-LRU reuse log;
    :func:`whatif_cache` prices the budget ladder from it; only the
    budgets predicted to beat the baseline are re-run.

    Raises :class:`TuneBoundError` when the replay self-check fails or
    a confirmed estimate lands outside the PR 7 grow/shrink bounds.
    """
    from repro.bench.harness import pick_sources
    from repro.core.efg import efg_encode
    from repro.core.listcache import DecodedListCache
    from repro.traversal.backends import EFGBackend
    from repro.traversal.bfs import bfs
    from repro.tune.store import workload_key

    if cache_kb <= 0:
        raise ValueError(f"cache_kb must be positive, got {cache_kb}")
    sources = [
        int(s) for s in pick_sources(graph, num_sources, seed=source_seed)
    ]
    enc = (
        efg_encode(graph, quantum=quantum)
        if quantum is not None
        else efg_encode(graph)
    )

    def run(budget_bytes: int, record: bool):
        backend = EFGBackend(enc, device)
        backend.attach_cache(
            DecodedListCache(budget_bytes, record_reuse=record)
        )
        # The engine timeline resets per traversal; ``elapsed_seconds``
        # prices the final (steady-state, warm-cache) traversal, which
        # is also the span the reuse log's last batches cover.
        for s in sources:
            bfs(backend, s)
        return backend.engine, backend.cache

    baseline_budget = cache_kb * 1024
    engine, cache = run(baseline_budget, record=True)
    baseline = engine.elapsed_seconds
    replayed = replay_engine_seconds(engine)
    if replayed != baseline:
        raise TuneBoundError(
            f"self-replay drifted: {replayed!r} != elapsed {baseline!r}"
        )

    predictions: list[tuple[int, WhatIfResult]] = []
    for factor in BUDGET_LADDER:
        budget = int(baseline_budget * factor)
        if budget > 0:
            predictions.append((budget, whatif_cache(engine, cache, budget)))
    shortlist = sorted(
        (
            (budget, pred)
            for budget, pred in predictions
            if pred.predicted_seconds < baseline
        ),
        key=lambda bp: (bp[1].predicted_seconds, bp[0]),
    )[: max(max_confirm, 0)]

    trials: list[TuneTrial] = []
    for budget, pred in shortlist:
        confirm_engine, _ = run(budget, record=False)
        trial = TuneTrial(
            name=pred.name,
            config={"cache_kb": budget // 1024},
            predicted_seconds=pred.predicted_seconds,
            confirmed_seconds=confirm_engine.elapsed_seconds,
            exact=False,
        )
        bound = (
            CACHE_GROW_REL_BOUND
            if budget >= baseline_budget
            else CACHE_SHRINK_REL_BOUND
        )
        _check_trial(trial, bound)
        trials.append(trial)

    best_config: dict = {}
    best_seconds = baseline
    for t in trials:
        if t.confirmed_seconds < best_seconds:
            best_seconds = t.confirmed_seconds
            best_config = t.config
    return TuneResult(
        workload=workload_key("bfs", "efg", 1, 1),
        baseline_config={"cache_kb": cache_kb},
        baseline_seconds=baseline,
        trials=tuple(trials),
        best_config=best_config,
        best_seconds=best_seconds,
    )
