"""Persisted tuned configs: per-family JSON files plus an index.

The autotuner's output has to outlive the process that found it —
``repro bench --tuned`` and ``repro dist --tuned`` read the chosen
knob settings back at a later date, possibly from CI.  The layout
mirrors the bench trajectory's: one canonical-JSON file per *graph
family* under ``benchmarks/tuned/``, each holding one entry per
*workload* (``algo/fmt/nodes x gpus-per-node``), plus a ``TUNED.json``
index enumerating what is on disk (the TRAJECTORY.json analogue).

A family groups graphs whose tuning transfers: same generator, scale
and edge factor (``rmat-s9-e8``).  Different seeds of one family share
an entry — the whole point of persisting is reusing a search done on
one instance.
"""

from __future__ import annotations

import json
import os

__all__ = [
    "TUNED_SCHEMA",
    "TUNED_INDEX_SCHEMA",
    "graph_family",
    "workload_key",
    "load_tuned",
    "lookup_tuned",
    "write_tuned",
    "write_tuned_index",
]

#: Version tag of one family's tuned-config file.
TUNED_SCHEMA = "repro.tuned/1"

#: Version tag of the ``TUNED.json`` index.
TUNED_INDEX_SCHEMA = "repro.tuned.index/1"


def graph_family(dataset: dict) -> str:
    """Family id of one dataset spec (seed-independent)."""
    kind = dataset.get("kind", "rmat")
    if kind == "rmat":
        return f"rmat-s{dataset['scale']}-e{dataset['edge_factor']}"
    return f"web-n{dataset['num_nodes']}-e{dataset['edge_factor']}"


def workload_key(algo: str, fmt: str, nodes: int, gpus: int) -> str:
    """Workload id: algorithm, format and GPU layout."""
    per_node = gpus // nodes if nodes else gpus
    return f"{algo}/{fmt}/{nodes}x{per_node}"


def _dump(payload: dict, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(payload, fh, sort_keys=True, indent=2)
        fh.write("\n")


def load_tuned(out_dir: str, family: str) -> dict:
    """One family's tuned-config file (``{}``-shaped when absent)."""
    path = os.path.join(out_dir, f"{family}.json")
    if not os.path.exists(path):
        return {"schema": TUNED_SCHEMA, "family": family, "workloads": {}}
    with open(path) as fh:
        try:
            payload = json.load(fh)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: invalid JSON ({exc})") from exc
    if payload.get("schema") != TUNED_SCHEMA:
        raise ValueError(
            f"{path}: schema {payload.get('schema')!r} != {TUNED_SCHEMA}"
        )
    return payload


def lookup_tuned(out_dir: str, family: str, workload: str) -> dict | None:
    """The persisted config for one family/workload, or ``None``."""
    try:
        payload = load_tuned(out_dir, family)
    except (OSError, ValueError):
        return None
    return payload.get("workloads", {}).get(workload)


def write_tuned(
    out_dir: str, family: str, workload: str, entry: dict
) -> str:
    """Merge one workload's entry into its family file; returns the path.

    Existing entries for other workloads survive; the index is
    refreshed afterwards so ``TUNED.json`` always reflects the
    directory.
    """
    os.makedirs(out_dir, exist_ok=True)
    payload = load_tuned(out_dir, family)
    payload["workloads"][workload] = dict(sorted(entry.items()))
    payload["workloads"] = dict(sorted(payload["workloads"].items()))
    path = os.path.join(out_dir, f"{family}.json")
    _dump(payload, path)
    write_tuned_index(out_dir)
    return path


def write_tuned_index(out_dir: str) -> str:
    """Regenerate ``TUNED.json`` from the family files on disk."""
    families = {}
    for name in sorted(os.listdir(out_dir)):
        if not name.endswith(".json") or name == "TUNED.json":
            continue
        family = name[: -len(".json")]
        try:
            payload = load_tuned(out_dir, family)
        except (OSError, ValueError):
            continue
        families[family] = {
            "file": name,
            "workloads": sorted(payload.get("workloads", {})),
        }
    path = os.path.join(out_dir, "TUNED.json")
    _dump({"schema": TUNED_INDEX_SCHEMA, "families": families}, path)
    return path
