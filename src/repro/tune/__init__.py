"""What-if-driven autotuner and persisted tuned configs."""

from repro.tune.autotuner import (
    CACHE_GROW_REL_BOUND,
    CACHE_SHRINK_REL_BOUND,
    WIRE_REL_BOUND,
    TuneBoundError,
    TuneResult,
    TuneTrial,
    tune_cluster,
    tune_engine,
)
from repro.tune.store import (
    TUNED_INDEX_SCHEMA,
    TUNED_SCHEMA,
    graph_family,
    load_tuned,
    lookup_tuned,
    workload_key,
    write_tuned,
    write_tuned_index,
)

__all__ = [
    "CACHE_GROW_REL_BOUND",
    "CACHE_SHRINK_REL_BOUND",
    "TUNED_INDEX_SCHEMA",
    "TUNED_SCHEMA",
    "TuneBoundError",
    "TuneResult",
    "TuneTrial",
    "WIRE_REL_BOUND",
    "graph_family",
    "load_tuned",
    "lookup_tuned",
    "tune_cluster",
    "tune_engine",
    "workload_key",
    "write_tuned",
    "write_tuned_index",
]
