"""Simulation engine: device + memory plan + accumulated timeline.

One :class:`SimEngine` drives one analytics run.  Traversal code opens
kernels with :meth:`launch`; on close, the kernel's simulated duration
is appended to the timeline.  ``elapsed_seconds`` is a running total
maintained per launch (level-synchronous algorithms serialize their
kernels), and ``kernel_summary`` aggregates by kernel name for
profiling-style reports — mirroring how one reads an ``nvprof`` trace.

The engine is also the root of the telemetry layer (:mod:`repro.obs`):
every engine carries a :class:`~repro.obs.spans.Tracer` building the
``run -> algorithm -> level -> kernel`` span hierarchy (:meth:`launch`
opens kernel spans itself; drivers open the outer layers via
:meth:`span`) and a :class:`~repro.obs.metrics.MetricsRegistry` of
counters/gauges/histograms.  :meth:`sample` records named time series
(frontier size, cache hit rate) that the Perfetto exporter turns into
counter tracks.  All of it keys off the simulated clock, so identical
runs produce identical telemetry.
"""

from __future__ import annotations

import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.gpusim.cost import CostModel, CostParams, KernelCost
from repro.gpusim.device import DeviceSpec
from repro.gpusim.kernel import KernelLaunch
from repro.gpusim.memory import MemoryManager
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Span, Tracer

__all__ = ["LaunchRecord", "SimEngine"]


@dataclass(frozen=True)
class LaunchRecord:
    """One completed kernel launch on the timeline.

    ``start_s`` is the simulated time the launch began.  Today kernels
    are strictly sequential, so starts happen to be cumulative — but
    exporters must use the recorded value, never re-accumulate
    durations, so future overlap/async execution cannot silently
    corrupt traces.
    """

    name: str
    start_s: float
    seconds: float
    cost: KernelCost


@dataclass
class SimEngine:
    """Deterministic simulated-time accumulator for one device run."""

    device: DeviceSpec
    memory: MemoryManager
    params: CostParams = field(default_factory=CostParams)
    tracer: Tracer = field(default_factory=Tracer)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    _records: list[LaunchRecord] = field(default_factory=list)
    _elapsed: float = 0.0
    _series: dict[str, list[tuple[float, float]]] = field(default_factory=dict)

    @classmethod
    def for_device(
        cls,
        device: DeviceSpec,
        reserve_bytes: int = 0,
        params: CostParams | None = None,
    ) -> "SimEngine":
        """Convenience constructor wiring a fresh memory manager."""
        memory = MemoryManager(
            capacity_bytes=device.memory_bytes, reserve_bytes=reserve_bytes
        )
        return cls(device=device, memory=memory, params=params or CostParams())

    @property
    def model(self) -> CostModel:
        """Cost model bound to this engine's device and memory plan."""
        return CostModel(device=self.device, memory=self.memory, params=self.params)

    @contextmanager
    def launch(self, name: str) -> Iterator[KernelLaunch]:
        """Open a kernel launch; its cost lands on the timeline at exit.

        Also opens a ``kernel`` span under whatever span the caller has
        open, annotated at close with the launch's cost breakdown — the
        leaf level of the run's span hierarchy.
        """
        start = self._elapsed
        span = self.tracer.open(name, "kernel", start)
        kernel = KernelLaunch(name=name, model=self.model)
        try:
            yield kernel
        except BaseException:
            self.tracer.close(self._elapsed)
            raise
        seconds = self.model.kernel_seconds(kernel.cost)
        # Snapshot the cost so the caller's live record stays untouched
        # by later mutation; the record is the single source of truth
        # for summaries and exporters.
        snapshot = kernel.cost.snapshot()
        self._records.append(LaunchRecord(name, start, seconds, snapshot))
        self._elapsed += seconds
        span.annotate(
            seconds=seconds,
            device_bytes=snapshot.device_bytes,
            host_bytes=snapshot.host_bytes,
            cached_bytes=snapshot.cached_bytes,
            instructions=snapshot.instructions,
            breakdown=dict(snapshot.breakdown),
        )
        self.tracer.close(self._elapsed)

    @contextmanager
    def span(self, name: str, kind: str = "phase", **attrs) -> Iterator[Span]:
        """Open a named span over simulated time (algorithm, level, ...).

        Yields the :class:`~repro.obs.spans.Span` so the caller can
        :meth:`~repro.obs.spans.Span.annotate` it with whatever it
        learns mid-level (edges expanded, direction decision, ...).
        """
        span = self.tracer.open(name, kind, self._elapsed, attrs)
        try:
            yield span
        finally:
            self.tracer.close(self._elapsed)

    @property
    def elapsed_seconds(self) -> float:
        """Total simulated time across all launches so far (O(1))."""
        return self._elapsed

    @property
    def num_launches(self) -> int:
        """Number of kernel launches recorded."""
        return len(self._records)

    @property
    def records(self) -> list[LaunchRecord]:
        """The launch timeline, in completion order (read-only use)."""
        return self._records

    @property
    def series(self) -> dict[str, list[tuple[float, float]]]:
        """Named ``(sim_time, value)`` series recorded via :meth:`sample`."""
        return self._series

    def reset_timeline(self) -> None:
        """Clear timing state, keeping the memory plan (new traversal run).

        Telemetry — spans, metrics, series — belongs to one run and is
        reset along with the timeline.
        """
        self._records.clear()
        self._elapsed = 0.0
        self._series.clear()
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()

    # -- named counters and series (cache hits, frontier sizes, ...) -----

    def record_counter(self, name: str, delta: float) -> None:
        """Deprecated shim over ``metrics.inc`` — call that instead.

        Kept one release for external callers; internal call sites have
        migrated to ``engine.metrics.inc``.  Still lands the counter in
        the registry so behaviour is unchanged apart from the warning.
        """
        warnings.warn(
            "SimEngine.record_counter is deprecated; "
            "use engine.metrics.inc(name, delta) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        self.metrics.inc(name, delta)

    @property
    def counters(self) -> dict[str, float]:
        """Named event counters accumulated during this run (a copy)."""
        return dict(self.metrics.counters)

    def sample(self, name: str, value: float) -> None:
        """Record one point of a named time series at the current time.

        Series become Perfetto counter tracks (frontier size over the
        run, cache hit rate, ...); the timestamp is the simulated clock.
        """
        self._series.setdefault(name, []).append(
            (self._elapsed, float(value))
        )

    def kernel_summary(self) -> dict[str, dict[str, float]]:
        """Aggregate traffic/instructions/time by kernel name."""
        out: dict[str, dict[str, float]] = {}
        for rec in self._records:
            row = out.setdefault(
                rec.name,
                {
                    "launches": 0.0,
                    "device_bytes": 0.0,
                    "host_bytes": 0.0,
                    "cached_bytes": 0.0,
                    "instructions": 0.0,
                    "floor_seconds": 0.0,
                    "seconds": 0.0,
                    "active_lanes": 0.0,
                    "lane_slots": 0.0,
                },
            )
            row["launches"] += rec.cost.launches
            # The three byte columns are disjoint by construction:
            # charge/charge_stream land in device_bytes or host_bytes by
            # residency, charge_cached only in cached_bytes — a cached
            # read never re-counts as DRAM traffic.
            row["device_bytes"] += rec.cost.device_bytes
            row["host_bytes"] += rec.cost.host_bytes
            row["cached_bytes"] += rec.cost.cached_bytes
            row["instructions"] += rec.cost.instructions
            row["floor_seconds"] += rec.cost.floor_seconds
            row["seconds"] += rec.seconds
            row["active_lanes"] += rec.cost.active_lanes
            row["lane_slots"] += rec.cost.lane_slots
        return out

    @staticmethod
    def _fit_name(name: str, width: int = 32) -> str:
        """Fixed-width name cell; long names get a trailing ellipsis."""
        if len(name) <= width:
            return f"{name:{width}s}"
        return name[: width - 1] + "…"

    def profile_report(self) -> str:
        """nvprof-style text table of where simulated time went.

        The three byte columns are disjoint: DRAM and PCIe bytes come
        from residency-charged accesses, ``cache MB`` only from
        :meth:`KernelLaunch.cached_read` hits — a byte appears in
        exactly one column.
        """
        summary = self.kernel_summary()
        total = self.elapsed_seconds or 1.0
        lines = [
            f"{'kernel':32s} {'time(ms)':>10s} {'%':>6s} {'launches':>9s} "
            f"{'dram MB':>9s} {'pcie MB':>9s} {'cache MB':>9s}"
        ]
        for name, row in sorted(
            summary.items(), key=lambda kv: -kv[1]["seconds"]
        ):
            lines.append(
                f"{self._fit_name(name)} {row['seconds'] * 1e3:10.3f} "
                f"{100 * row['seconds'] / total:6.1f} {int(row['launches']):9d} "
                f"{row['device_bytes'] / 1e6:9.3f} "
                f"{row['host_bytes'] / 1e6:9.3f} "
                f"{row['cached_bytes'] / 1e6:9.3f}"
            )
        counters = self.metrics.counters
        if counters:
            lines.append(f"{'counter':32s} {'value':>18s}")
            for name in sorted(counters):
                lines.append(f"{self._fit_name(name)} {counters[name]:18,.0f}")
        from repro.obs.critpath import (
            critpath_report_line,
            extract_critical_path,
        )

        lines.append(critpath_report_line(extract_critical_path(self)))
        return "\n".join(lines)
