"""Simulation engine: device + memory plan + accumulated timeline.

One :class:`SimEngine` drives one analytics run.  Traversal code opens
kernels with :meth:`launch`; on close, the kernel's simulated duration
is appended to the timeline.  ``elapsed_seconds`` is the sum over
launches (level-synchronous algorithms serialize their kernels), and
``kernel_summary`` aggregates by kernel name for profiling-style
reports — mirroring how one reads an ``nvprof`` trace.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.gpusim.cost import CostModel, CostParams, KernelCost
from repro.gpusim.device import DeviceSpec
from repro.gpusim.kernel import KernelLaunch
from repro.gpusim.memory import MemoryManager

__all__ = ["SimEngine"]


@dataclass
class SimEngine:
    """Deterministic simulated-time accumulator for one device run."""

    device: DeviceSpec
    memory: MemoryManager
    params: CostParams = field(default_factory=CostParams)
    _timeline: list[tuple[str, float]] = field(default_factory=list)
    _by_kernel: dict[str, KernelCost] = field(default_factory=dict)
    _counters: dict[str, float] = field(default_factory=dict)

    @classmethod
    def for_device(
        cls,
        device: DeviceSpec,
        reserve_bytes: int = 0,
        params: CostParams | None = None,
    ) -> "SimEngine":
        """Convenience constructor wiring a fresh memory manager."""
        memory = MemoryManager(
            capacity_bytes=device.memory_bytes, reserve_bytes=reserve_bytes
        )
        return cls(device=device, memory=memory, params=params or CostParams())

    @property
    def model(self) -> CostModel:
        """Cost model bound to this engine's device and memory plan."""
        return CostModel(device=self.device, memory=self.memory, params=self.params)

    @contextmanager
    def launch(self, name: str) -> Iterator[KernelLaunch]:
        """Open a kernel launch; its cost lands on the timeline at exit."""
        kernel = KernelLaunch(name=name, model=self.model)
        yield kernel
        seconds = self.model.kernel_seconds(kernel.cost)
        self._timeline.append((name, seconds))
        # Aggregate a *copy* so the caller's live cost record stays
        # untouched by later launches of the same kernel.
        snapshot = KernelCost(
            name=name,
            device_bytes=kernel.cost.device_bytes,
            host_bytes=kernel.cost.host_bytes,
            cached_bytes=kernel.cost.cached_bytes,
            instructions=kernel.cost.instructions,
            floor_seconds=kernel.cost.floor_seconds,
            launches=kernel.cost.launches,
            breakdown=dict(kernel.cost.breakdown),
        )
        if name in self._by_kernel:
            self._by_kernel[name].merge(snapshot)
        else:
            self._by_kernel[name] = snapshot

    @property
    def elapsed_seconds(self) -> float:
        """Total simulated time across all launches so far."""
        return sum(t for _, t in self._timeline)

    @property
    def num_launches(self) -> int:
        """Number of kernel launches recorded."""
        return len(self._timeline)

    def reset_timeline(self) -> None:
        """Clear timing state, keeping the memory plan (new traversal run)."""
        self._timeline.clear()
        self._by_kernel.clear()
        self._counters.clear()

    # -- named counters (cache hits, bytes saved, ...) -------------------

    def record_counter(self, name: str, delta: float) -> None:
        """Accumulate a named event counter on this run's timeline.

        Used for quantities that are not traffic or time — decoded-list
        cache hits/misses/evictions, bytes saved — so they show up next
        to the kernels that produced them in :meth:`profile_report`.
        Cleared by :meth:`reset_timeline` like the rest of the run state.
        """
        self._counters[name] = self._counters.get(name, 0.0) + float(delta)

    @property
    def counters(self) -> dict[str, float]:
        """Named event counters accumulated during this run (a copy)."""
        return dict(self._counters)

    def kernel_summary(self) -> dict[str, dict[str, float]]:
        """Aggregate traffic/instructions/time by kernel name."""
        out: dict[str, dict[str, float]] = {}
        times: dict[str, float] = {}
        for name, seconds in self._timeline:
            times[name] = times.get(name, 0.0) + seconds
        for name, cost in self._by_kernel.items():
            out[name] = {
                "launches": float(cost.launches),
                "device_bytes": cost.device_bytes,
                "host_bytes": cost.host_bytes,
                "cached_bytes": cost.cached_bytes,
                "instructions": cost.instructions,
                "seconds": times.get(name, 0.0),
            }
        return out

    def profile_report(self) -> str:
        """nvprof-style text table of where simulated time went."""
        summary = self.kernel_summary()
        total = self.elapsed_seconds or 1.0
        lines = [f"{'kernel':32s} {'time(ms)':>10s} {'%':>6s} {'launches':>9s}"]
        for name, row in sorted(
            summary.items(), key=lambda kv: -kv[1]["seconds"]
        ):
            lines.append(
                f"{name:32s} {row['seconds'] * 1e3:10.3f} "
                f"{100 * row['seconds'] / total:6.1f} {int(row['launches']):9d}"
            )
        if self._counters:
            lines.append(f"{'counter':32s} {'value':>14s}")
            for name in sorted(self._counters):
                lines.append(f"{name:32s} {self._counters[name]:14,.0f}")
        return "\n".join(lines)
