"""Chrome-trace export of a simulation timeline.

``chrome://tracing`` / Perfetto accept a simple JSON event format; this
module serialises a :class:`~repro.gpusim.engine.SimEngine` timeline to
it, so a simulated traversal can be inspected kernel-by-kernel the way
one would inspect an ``nsys`` capture of the real implementation.
"""

from __future__ import annotations

import json

from repro.gpusim.engine import SimEngine

__all__ = ["timeline_events", "write_chrome_trace"]


def timeline_events(engine: SimEngine, pid: int = 0) -> list[dict]:
    """Complete-event ('X') records for every kernel launch, in order.

    Timestamps are simulated microseconds; kernels of the same name
    share a Perfetto track via their thread id.
    """
    events: list[dict] = []
    tids: dict[str, int] = {}
    cursor = 0.0
    for name, seconds in engine._timeline:  # noqa: SLF001 - own module family
        tid = tids.setdefault(name, len(tids))
        events.append(
            {
                "name": name,
                "ph": "X",
                "ts": cursor * 1e6,
                "dur": seconds * 1e6,
                "pid": pid,
                "tid": tid,
            }
        )
        cursor += seconds
    return events


def write_chrome_trace(engine: SimEngine, path: str, pid: int = 0) -> None:
    """Write the timeline as a chrome://tracing JSON file."""
    payload = {
        "traceEvents": timeline_events(engine, pid=pid),
        "displayTimeUnit": "ms",
        "metadata": {"device": engine.device.name},
    }
    with open(path, "w") as fh:
        json.dump(payload, fh)
