"""Chrome-trace export of a simulation timeline.

``chrome://tracing`` / Perfetto accept a simple JSON event format; this
module serialises a :class:`~repro.gpusim.engine.SimEngine` timeline to
it, so a simulated traversal can be inspected kernel-by-kernel the way
one would inspect an ``nsys`` capture of the real implementation.

:func:`write_chrome_trace` keeps the original flat per-kernel layout.
For the full picture — nested ``run -> algorithm -> level -> kernel``
spans plus counter tracks (frontier size, cumulative bytes, cache hit
rate) — use :func:`repro.obs.export.write_perfetto_trace`, which
composes :func:`timeline_events` with the span and counter exporters.
"""

from __future__ import annotations

import json

from repro.gpusim.engine import SimEngine

__all__ = ["timeline_events", "write_chrome_trace"]


def timeline_events(engine: SimEngine, pid: int = 0) -> list[dict]:
    """Complete-event ('X') records for every kernel launch, in order.

    Timestamps are simulated microseconds taken from each launch's
    *recorded* start time (never re-accumulated from durations, so
    traces stay correct if launches ever overlap); kernels of the same
    name share a Perfetto track via their thread id.
    """
    events: list[dict] = []
    tids: dict[str, int] = {}
    for record in engine.records:
        tid = tids.setdefault(record.name, len(tids))
        events.append(
            {
                "name": record.name,
                "ph": "X",
                "ts": record.start_s * 1e6,
                "dur": record.seconds * 1e6,
                "pid": pid,
                "tid": tid,
            }
        )
    return events


def write_chrome_trace(engine: SimEngine, path: str, pid: int = 0) -> None:
    """Write the kernel timeline as a chrome://tracing JSON file."""
    payload = {
        "traceEvents": timeline_events(engine, pid=pid),
        "displayTimeUnit": "ms",
        "metadata": {"device": engine.device.name},
    }
    with open(path, "w") as fh:
        json.dump(payload, fh)
