"""Residency planning: which arrays live in device memory vs host.

Models the out-of-core strategy of EMOGI (Sec. II): the application
does not page — arrays that do not fit stay in pinned host memory and
are streamed over the interconnect at cacheline granularity
(*zero-copy*).  The planner packs arrays into the device greedily by
caller-assigned priority (hot, small arrays first — the same choice a
practitioner makes by hand).

This is what creates the regions of Fig. 1 / Fig. 10: the same kernel
gets charged DRAM bandwidth for resident arrays and PCIe bandwidth for
host arrays.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["Residency", "PlacedArray", "MemoryManager"]


class Residency(enum.Enum):
    """Where an array lives during the kernel."""

    DEVICE = "device"
    HOST = "host"


@dataclass(frozen=True)
class PlacedArray:
    """One registered array and its placement."""

    name: str
    nbytes: int
    priority: int
    residency: Residency


@dataclass
class MemoryManager:
    """Greedy residency planner for one simulated device memory.

    Arrays are registered with a byte size and a priority (lower value =
    placed first).  ``reserve_bytes`` models the working data the
    analytics kernel needs resident (frontiers, visited bitmaps,
    distance arrays) — the paper notes compression matters even for
    in-memory graphs "if additional space is needed for the analytics
    kernel".
    """

    capacity_bytes: int
    reserve_bytes: int = 0
    _arrays: dict[str, tuple[int, int]] = field(default_factory=dict)
    _plan: dict[str, PlacedArray] | None = None

    def register(self, name: str, nbytes: int, priority: int = 0) -> None:
        """Register (or re-register) an array; invalidates the plan."""
        if nbytes < 0:
            raise ValueError(f"negative size for {name}: {nbytes}")
        self._arrays[name] = (int(nbytes), int(priority))
        self._plan = None

    def plan(self) -> dict[str, PlacedArray]:
        """Compute placements greedily by (priority, registration order)."""
        if self._plan is not None:
            return self._plan
        free = self.capacity_bytes - self.reserve_bytes
        placements: dict[str, PlacedArray] = {}
        order = sorted(
            self._arrays.items(), key=lambda kv: (kv[1][1],)
        )  # stable: ties keep registration order
        for name, (nbytes, priority) in order:
            if nbytes <= free:
                residency = Residency.DEVICE
                free -= nbytes
            else:
                residency = Residency.HOST
            placements[name] = PlacedArray(name, nbytes, priority, residency)
        self._plan = placements
        return placements

    def residency(self, name: str) -> Residency:
        """Placement of one array (plans lazily)."""
        plan = self.plan()
        if name not in plan:
            raise KeyError(f"array {name!r} was never registered")
        return plan[name].residency

    def device_bytes_used(self) -> int:
        """Bytes of device memory consumed by resident arrays + reserve."""
        plan = self.plan()
        return self.reserve_bytes + sum(
            p.nbytes for p in plan.values() if p.residency is Residency.DEVICE
        )

    def all_resident(self) -> bool:
        """True when every registered array fits on the device."""
        return all(
            p.residency is Residency.DEVICE for p in self.plan().values()
        )

    def summary(self) -> str:
        """Human-readable placement table."""
        lines = [f"capacity {self.capacity_bytes:,} B, reserve {self.reserve_bytes:,} B"]
        for p in self.plan().values():
            lines.append(f"  {p.name:24s} {p.nbytes:14,d} B  {p.residency.value}")
        return "\n".join(lines)
