"""Unified-virtual-memory (UVM) out-of-core model (Sec. II).

The paper contrasts two out-of-core mechanisms: *zero-copy* (EMOGI's
cacheline-granularity streaming, which our default cost model charges)
and *UVM* (demand paging with on-device page cache, the approach of
Gera et al. VLDB'20 — the paper's reference [5]).  UVM moves whole
pages (64 KiB on NVIDIA hardware) on first touch and evicts LRU pages
under pressure, which behaves very differently under sparse access:

* dense/sequential sweeps amortise each migration over the whole page
  and approach PCIe peak;
* sparse random probes (BFS's visited checks, scattered list heads)
  thrash — a 4-byte read costs a 64 KiB migration, and the paper's
  motivation for EMOGI-style zero-copy is exactly this read
  amplification.

:class:`UVMSimulator` replays an access stream against an LRU page
cache and reports migrated bytes; the ablation benchmark compares the
two mechanisms for out-of-core CSR BFS.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

__all__ = ["UVMSimulator", "UVM_PAGE_BYTES"]

#: NVIDIA UVM migration granularity.
UVM_PAGE_BYTES = 64 * 1024


@dataclass
class UVMSimulator:
    """LRU page cache fed by element-access streams.

    Parameters
    ----------
    cache_bytes:
        Device memory available for migrated pages.
    page_bytes:
        Migration granularity (default 64 KiB).
    """

    cache_bytes: int
    page_bytes: int = UVM_PAGE_BYTES
    _lru: OrderedDict = field(default_factory=OrderedDict)
    migrated_pages: int = 0
    evicted_pages: int = 0
    hits: int = 0
    misses: int = 0

    def __post_init__(self) -> None:
        if self.cache_bytes < self.page_bytes:
            raise ValueError("cache must hold at least one page")
        if self.page_bytes <= 0:
            raise ValueError("page size must be positive")

    @property
    def capacity_pages(self) -> int:
        """Pages the device cache can hold."""
        return self.cache_bytes // self.page_bytes

    @property
    def migrated_bytes(self) -> int:
        """Total bytes moved over the interconnect."""
        return self.migrated_pages * self.page_bytes

    def access(self, ids: np.ndarray, elem_bytes: int, base_offset: int = 0) -> int:
        """Replay an access stream; returns pages migrated by it.

        ``ids`` are element indices into an array that starts at
        ``base_offset`` bytes in the managed space (distinct arrays get
        disjoint offset ranges so their pages do not alias).
        """
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size == 0:
            return 0
        pages = (base_offset + ids * elem_bytes) // self.page_bytes
        # Deduplicate consecutive repeats cheaply before the LRU loop.
        keep = np.ones(pages.shape[0], dtype=bool)
        keep[1:] = pages[1:] != pages[:-1]
        pages = pages[keep]
        migrated_before = self.migrated_pages
        lru = self._lru
        cap = self.capacity_pages
        for page in pages.tolist():
            if page in lru:
                lru.move_to_end(page)
                self.hits += 1
                continue
            self.misses += 1
            self.migrated_pages += 1
            lru[page] = True
            if len(lru) > cap:
                lru.popitem(last=False)
                self.evicted_pages += 1
        return self.migrated_pages - migrated_before

    def reset(self) -> None:
        """Clear the cache and counters (new traversal run)."""
        self._lru.clear()
        self.migrated_pages = 0
        self.evicted_pages = 0
        self.hits = 0
        self.misses = 0

    def transfer_seconds(self, link_bandwidth: float) -> float:
        """Interconnect time spent on migrations so far."""
        return self.migrated_bytes / link_bandwidth
