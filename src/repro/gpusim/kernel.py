"""Kernel launch recording interface.

Traversal code wraps each logical GPU kernel in a :class:`KernelLaunch`
(usually via :meth:`repro.gpusim.engine.SimEngine.launch`) and reports
the accesses it performs while the vectorized NumPy does the actual
work.  Keeping the accounting calls adjacent to the computation keeps
traffic honest: the counts come from live array sizes, never constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gpusim.cost import AccessPattern, CostModel, KernelCost

__all__ = ["KernelLaunch"]


@dataclass
class KernelLaunch:
    """One simulated kernel launch being recorded."""

    name: str
    model: CostModel
    cost: KernelCost = field(init=False)

    def __post_init__(self) -> None:
        self.cost = KernelCost(name=self.name)

    # -- memory traffic -------------------------------------------------

    def read(
        self,
        array: str,
        count: int,
        elem_bytes: int,
        pattern: AccessPattern = AccessPattern.COALESCED,
    ) -> None:
        """Record ``count`` reads of ``elem_bytes`` from ``array``."""
        self.model.charge(self.cost, array, count, elem_bytes, pattern)

    def write(
        self,
        array: str,
        count: int,
        elem_bytes: int,
        pattern: AccessPattern = AccessPattern.COALESCED,
    ) -> None:
        """Record writes; charged like reads (write-allocate traffic)."""
        self.model.charge(self.cost, array, count, elem_bytes, pattern)

    def atomic(self, array: str, count: int, elem_bytes: int = 4) -> None:
        """Record atomics: a random read-modify-write per operation."""
        self.model.charge(self.cost, array, count, elem_bytes, AccessPattern.RANDOM)
        self.cost.instructions += 2.0 * count  # RMW issue cost

    def read_stream(self, array: str, ids, elem_bytes: int) -> None:
        """Record an access stream with measured coalescing.

        ``ids`` are the element indices in issue order; consecutive
        accesses falling in the same transfer unit are merged, so the
        charge reflects the stream's real locality.
        """
        self.model.charge_stream(self.cost, array, ids, elem_bytes)

    def cached_read(self, tag: str, count: int, elem_bytes: int) -> None:
        """Record reads served from on-chip cache (decoded-list hits).

        No DRAM or PCIe traffic is generated; the bytes stream out of
        L2/shared memory at ``cached_bw_ratio`` x DRAM bandwidth.
        ``tag`` names the logical cached structure (it need not be a
        registered array — cache residency is budgeted separately).
        """
        self.model.charge_cached(self.cost, tag, count, elem_bytes)

    def warp_occupancy(self, list_lengths) -> None:
        """Record warp divergence from the per-lane work distribution.

        ``list_lengths`` is the work each consecutive lane performs —
        for expand kernels, the adjacency-list length of each frontier
        vertex in issue order.  Lanes are grouped into warps of
        ``warp_width``; a warp runs for as many steps as its *longest*
        list while shorter lanes idle, so the launch accumulates
        ``sum(lengths)`` active lanes against
        ``warp_width * sum(per-warp max)`` occupied lane slots.  The
        ratio is the emulated ``warp_execution_efficiency`` counter —
        skewed degree distributions (hub + leaves in one warp) drive it
        down exactly as on hardware.
        """
        lengths = np.asarray(list_lengths, dtype=np.float64).ravel()
        if lengths.size == 0:
            return
        if float(lengths.min()) < 0:
            raise ValueError("negative list length")
        width = self.model.params.warp_width
        pad = (-lengths.size) % width
        if pad:
            lengths = np.concatenate([lengths, np.zeros(pad)])
        per_warp = lengths.reshape(-1, width)
        self.cost.active_lanes += float(per_warp.sum())
        self.cost.lane_slots += float(per_warp.max(axis=1).sum() * width)

    # -- compute ---------------------------------------------------------

    def instructions(self, count: float) -> None:
        """Record ``count`` data-parallel instructions."""
        if count < 0:
            raise ValueError(f"negative instruction count: {count}")
        self.cost.instructions += float(count)

    def bitmask_ops(self, count: float, lanes: int = 64) -> None:
        """Record ``count`` wide bitmask ALU operations.

        One 64-bit OR/AND/shift updates the traversal state of ``lanes``
        concurrent sources at once — the bit-parallel multi-source BFS
        trick.  Each op costs a single data-parallel instruction no
        matter how many sources it serves; ``lanes`` documents the
        amortization (and guards against claiming more than 64 on the
        u64 masks the traversals use).
        """
        if count < 0:
            raise ValueError(f"negative bitmask op count: {count}")
        if not 1 <= lanes <= 64:
            raise ValueError(f"lanes must be in [1, 64], got {lanes}")
        self.cost.instructions += float(count)

    def serial_work(self, lane_instructions: float) -> None:
        """Record work executed by a single lane while its warp waits.

        Used for dependent decode chains (CGR varint parsing): one lane
        doing N instructions occupies warp_width lane-slots.
        """
        if lane_instructions < 0:
            raise ValueError("negative serial work")
        self.cost.instructions += float(lane_instructions) * self.model.params.warp_width

    def serial_floor(self, lane_cycles: float) -> None:
        """Impose a critical-path floor of ``lane_cycles`` core cycles.

        Models the longest dependent chain in the launch (e.g. one hub
        list parsed by a single lane): the kernel cannot finish sooner
        regardless of bandwidth or free SMs.
        """
        if lane_cycles < 0:
            raise ValueError("negative floor")
        self.cost.floor_seconds = max(
            self.cost.floor_seconds, lane_cycles / self.model.device.clock_hz
        )
