"""Analytic kernel cost model.

Converts the traffic a kernel *actually generated* — measured from the
real data structures, not assumed — into a simulated runtime:

``time = launch_overhead + max(dram_time, link_time, compute_time)``

* ``dram_time`` — bytes touched in device-resident arrays over the
  device bandwidth, with sector-granularity amplification for
  uncoalesced accesses (an uncoalesced 4 B load still moves a 32 B
  sector).
* ``link_time`` — bytes touched in host-resident arrays over the PCIe
  bandwidth at zero-copy cacheline granularity (the EMOGI model,
  Sec. II).
* ``compute_time`` — instructions over the chip's effective
  instruction throughput.  ``simt_efficiency`` models divergence,
  dependency stalls and occupancy limits of irregular kernels (binary
  searches, LUT probes, shared-memory syncs); graph kernels typically
  sustain 10-20% of peak issue rate.

Serialized work (CGR's dependent varint chains, where one lane of a
warp parses while the rest idle) is charged via
:meth:`KernelLaunch.serial_work`, which multiplies by the warp width —
the SIMT cost of a sequential algorithm.

The overlap assumption (``max`` rather than sum) matches a
memory-bound GPU kernel with enough concurrent warps to hide whichever
component is not the bottleneck.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

import numpy as np

from repro.gpusim.device import DeviceSpec
from repro.gpusim.memory import MemoryManager, Residency

__all__ = [
    "AccessPattern",
    "ArrayTraffic",
    "CostParams",
    "KernelCost",
    "CostModel",
    "stream_transfer_bytes",
]


#: Accesses whose transfer unit reappeared within this many prior
#: accesses are merged — models the coalescer plus the L2/MSHR window
#: that combines requests from concurrently-running warps.
COALESCE_WINDOW = 32


def stream_transfer_bytes(
    ids: np.ndarray,
    elem_bytes: int,
    unit_bytes: int,
    window: int = COALESCE_WINDOW,
) -> int:
    """Bytes a coalescing memory system moves for an access stream.

    ``ids`` are element indices in issue order.  An access whose
    ``unit_bytes`` transfer unit (DRAM sector or PCIe cacheline) was
    touched within the previous ``window`` accesses is merged with the
    in-flight request — the hardware coalescer + L2 hit behaviour — so
    a clustered stream costs close to ``len * elem_bytes`` while a
    scattered one costs a full unit per access.  This is what makes the
    model sensitive to frontier ordering (Sec. VI-E) and to graph
    reordering (Sec. VIII-D): locality is *measured* from the ids the
    kernel really touches.
    """
    ids = np.asarray(ids)
    if ids.size == 0:
        return 0
    if elem_bytes <= 0 or unit_bytes <= 0:
        raise ValueError("elem_bytes and unit_bytes must be positive")
    if window < 1:
        raise ValueError("window must be >= 1")
    units = (ids.astype(np.int64) * elem_bytes) // unit_bytes
    merged = np.zeros(units.shape[0], dtype=bool)
    for k in range(1, min(window, units.shape[0] - 1) + 1):
        merged[k:] |= units[k:] == units[:-k]
    misses = int((~merged).sum())
    return misses * unit_bytes


class AccessPattern(enum.Enum):
    """How a kernel touches an array."""

    #: Sequential, full-sector utilisation (e.g. scanning elist ranges).
    COALESCED = "coalesced"
    #: Data-dependent scatter/gather — every element pulls a whole
    #: sector (device) or cacheline (host link).
    RANDOM = "random"
    #: One fetch shared by the whole block (e.g. a list header).
    BROADCAST = "broadcast"


@dataclass(frozen=True)
class CostParams:
    """Calibration constants (documented in DESIGN.md).

    ``simt_efficiency`` — sustained fraction of peak issue rate for
    irregular integer kernels.  ``warp_width`` — lanes that idle while
    serialized code runs on one.  ``cached_bw_ratio`` — bandwidth of
    on-chip cache/shared-memory reads relative to DRAM (L2 on Pascal
    sustains roughly 3-5x DRAM bandwidth); cached reads recorded via
    :meth:`KernelLaunch.cached_read` are charged at this multiple.
    """

    simt_efficiency: float = 0.15
    warp_width: int = 32
    cached_bw_ratio: float = 4.0

    def __post_init__(self) -> None:
        if not 0 < self.simt_efficiency <= 1:
            raise ValueError("simt_efficiency must be in (0, 1]")
        if self.warp_width < 1:
            raise ValueError("warp_width must be >= 1")
        if self.cached_bw_ratio < 1:
            raise ValueError("cached_bw_ratio must be >= 1")


@dataclass
class ArrayTraffic:
    """Traffic one kernel generated against one array (or cache tag).

    The emulated-counter analogue of an nvprof per-data-structure row:

    * ``residency`` — ``"device"``, ``"host"`` or ``"cache"``; decides
      which byte column (and which transfer unit) the traffic landed in.
    * ``moved_bytes`` — bytes the memory system actually transferred,
      at sector/cacheline granularity.  Sums over a launch's entries
      reproduce ``device_bytes`` / ``host_bytes`` / ``cached_bytes``
      exactly — the attribution invariant the counters module checks.
    * ``requested_bytes`` — bytes the lanes logically demanded
      (``count * elem_bytes``).  ``requested / moved`` is the coalescing
      efficiency; it exceeds 1 when broadcasts or the coalescing window
      merge many requests into one transfer.
    * ``sectors`` — transfer units moved (DRAM sectors or PCIe
      cachelines); the nvprof transaction count.  Cache hits move no
      sectors.
    * ``accesses`` — element-level requests issued.
    """

    residency: str
    moved_bytes: float = 0.0
    requested_bytes: float = 0.0
    sectors: float = 0.0
    accesses: float = 0.0

    def add(
        self, moved: float, requested: float, sectors: float, accesses: float
    ) -> None:
        self.moved_bytes += moved
        self.requested_bytes += requested
        self.sectors += sectors
        self.accesses += accesses

    def merge(self, other: "ArrayTraffic") -> None:
        self.add(
            other.moved_bytes, other.requested_bytes, other.sectors, other.accesses
        )

    def copy(self) -> "ArrayTraffic":
        return ArrayTraffic(
            residency=self.residency,
            moved_bytes=self.moved_bytes,
            requested_bytes=self.requested_bytes,
            sectors=self.sectors,
            accesses=self.accesses,
        )

    def to_dict(self) -> dict[str, float | str]:
        return {
            "residency": self.residency,
            "moved_bytes": self.moved_bytes,
            "requested_bytes": self.requested_bytes,
            "sectors": self.sectors,
            "accesses": self.accesses,
        }


@dataclass
class KernelCost:
    """Accumulated cost of one kernel launch.

    ``floor_seconds`` is a critical-path lower bound that the ``max``
    in :meth:`CostModel.kernel_seconds` cannot hide behind bandwidth:
    a dependent chain no amount of parallel hardware can shorten
    (e.g. CGR's longest per-list varint chain).

    ``traffic`` carries the per-array attribution of every byte term
    (keyed by the registered array name, or ``cache:<tag>`` for cached
    reads); ``active_lanes`` / ``lane_slots`` accumulate the warp
    occupancy recorded by :meth:`KernelLaunch.warp_occupancy`.
    """

    name: str
    device_bytes: float = 0.0
    host_bytes: float = 0.0
    cached_bytes: float = 0.0
    instructions: float = 0.0
    floor_seconds: float = 0.0
    launches: int = 1
    breakdown: dict[str, float] = field(default_factory=dict)
    traffic: dict[str, ArrayTraffic] = field(default_factory=dict)
    active_lanes: float = 0.0
    lane_slots: float = 0.0

    @property
    def warp_efficiency(self) -> float:
        """Active-lane fraction of the occupied warp slots (1.0 = none)."""
        if self.lane_slots <= 0:
            return 1.0
        return self.active_lanes / self.lane_slots

    def add_traffic(
        self,
        array: str,
        residency: str,
        moved: float,
        requested: float,
        sectors: float,
        accesses: float,
    ) -> None:
        """Accumulate one charge into the per-array attribution table."""
        entry = self.traffic.get(array)
        if entry is not None and entry.residency != residency:
            # Residency changed between launches (re-planned memory):
            # keep the entries separate so sums stay per-residency exact.
            array = f"{array}@{residency}"
            entry = self.traffic.get(array)
        if entry is None:
            entry = self.traffic[array] = ArrayTraffic(residency=residency)
        entry.add(moved, requested, sectors, accesses)

    def merge(self, other: "KernelCost") -> None:
        """Fold another launch's cost into this one (for summaries)."""
        self.device_bytes += other.device_bytes
        self.host_bytes += other.host_bytes
        self.cached_bytes += other.cached_bytes
        self.instructions += other.instructions
        self.floor_seconds += other.floor_seconds
        self.launches += other.launches
        self.active_lanes += other.active_lanes
        self.lane_slots += other.lane_slots
        for key, value in other.breakdown.items():
            self.breakdown[key] = self.breakdown.get(key, 0.0) + value
        for key, entry in other.traffic.items():
            self.add_traffic(
                key,
                entry.residency,
                entry.moved_bytes,
                entry.requested_bytes,
                entry.sectors,
                entry.accesses,
            )

    def snapshot(self) -> "KernelCost":
        """Deep-enough copy for an immutable :class:`LaunchRecord`."""
        return KernelCost(
            name=self.name,
            device_bytes=self.device_bytes,
            host_bytes=self.host_bytes,
            cached_bytes=self.cached_bytes,
            instructions=self.instructions,
            floor_seconds=self.floor_seconds,
            launches=self.launches,
            breakdown=dict(self.breakdown),
            traffic={key: entry.copy() for key, entry in self.traffic.items()},
            active_lanes=self.active_lanes,
            lane_slots=self.lane_slots,
        )


@dataclass
class CostModel:
    """Charges :class:`KernelCost` records against a :class:`DeviceSpec`."""

    device: DeviceSpec
    memory: MemoryManager
    params: CostParams = field(default_factory=CostParams)

    def effective_bytes(
        self, count: int, elem_bytes: int, pattern: AccessPattern, residency: Residency
    ) -> float:
        """Bytes actually moved for ``count`` accesses of ``elem_bytes``."""
        if count < 0 or elem_bytes < 0:
            raise ValueError("count and elem_bytes must be non-negative")
        if pattern is AccessPattern.COALESCED:
            return float(count * elem_bytes)
        if pattern is AccessPattern.BROADCAST:
            return float(elem_bytes)
        # RANDOM: each access pulls a whole transfer unit.
        if residency is Residency.DEVICE:
            unit = self.device.sector_bytes
        else:
            unit = self.device.link_line_bytes
        return float(count * max(elem_bytes, unit))

    def transfer_unit(self, residency: Residency) -> int:
        """Transfer-unit size for a residency: DRAM sector or PCIe line."""
        if residency is Residency.DEVICE:
            return self.device.sector_bytes
        return self.device.link_line_bytes

    def charge(
        self,
        cost: KernelCost,
        array: str,
        count: int,
        elem_bytes: int,
        pattern: AccessPattern,
    ) -> None:
        """Record an access to a registered array on ``cost``."""
        residency = self.memory.residency(array)
        nbytes = self.effective_bytes(count, elem_bytes, pattern, residency)
        if residency is Residency.DEVICE:
            cost.device_bytes += nbytes
        else:
            cost.host_bytes += nbytes
        cost.breakdown[array] = cost.breakdown.get(array, 0.0) + nbytes
        unit = self.transfer_unit(residency)
        cost.add_traffic(
            array,
            residency.value,
            moved=nbytes,
            requested=float(count * elem_bytes),
            sectors=float(math.ceil(nbytes / unit)) if nbytes else 0.0,
            accesses=float(count),
        )

    def charge_stream(
        self, cost: KernelCost, array: str, ids: np.ndarray, elem_bytes: int
    ) -> None:
        """Charge an access stream with measured coalescing."""
        residency = self.memory.residency(array)
        unit = self.transfer_unit(residency)
        nbytes = float(stream_transfer_bytes(ids, elem_bytes, unit))
        if residency is Residency.DEVICE:
            cost.device_bytes += nbytes
        else:
            cost.host_bytes += nbytes
        cost.breakdown[array] = cost.breakdown.get(array, 0.0) + nbytes
        ids = np.asarray(ids)
        cost.add_traffic(
            array,
            residency.value,
            moved=nbytes,
            requested=float(ids.size * elem_bytes),
            # stream_transfer_bytes returns misses * unit, so this is
            # exactly the miss count — the sectors the stream moved.
            sectors=nbytes / unit,
            accesses=float(ids.size),
        )

    def charge_cached(
        self, cost: KernelCost, tag: str, count: int, elem_bytes: int
    ) -> None:
        """Charge reads served from on-chip cache (no DRAM traffic).

        Used by the decoded-list cache: a hit streams the already-decoded
        neighbour array out of L2/shared memory instead of re-reading and
        re-decoding the compressed payload.  Charged at
        ``cached_bw_ratio`` times DRAM bandwidth in
        :meth:`kernel_seconds`; the breakdown entry is prefixed with
        ``cache:`` so reports can separate it from DRAM traffic.
        """
        if count < 0 or elem_bytes < 0:
            raise ValueError("count and elem_bytes must be non-negative")
        nbytes = float(count * elem_bytes)
        cost.cached_bytes += nbytes
        key = f"cache:{tag}"
        cost.breakdown[key] = cost.breakdown.get(key, 0.0) + nbytes
        cost.add_traffic(
            key,
            "cache",
            moved=nbytes,
            requested=nbytes,
            sectors=0.0,
            accesses=float(count),
        )

    def compute_seconds(self, instructions: float) -> float:
        """Instruction time at the effective (derated) issue rate."""
        throughput = self.device.instruction_throughput * self.params.simt_efficiency
        return instructions / throughput

    def kernel_seconds(self, cost: KernelCost) -> float:
        """Simulated duration of one (merged) kernel launch record."""
        dram_time = cost.device_bytes / self.device.dram_bandwidth
        link_time = cost.host_bytes / self.device.link_bandwidth
        cache_time = cost.cached_bytes / (
            self.device.dram_bandwidth * self.params.cached_bw_ratio
        )
        compute_time = self.compute_seconds(cost.instructions)
        overhead = cost.launches * self.device.launch_overhead_s
        return overhead + max(
            dram_time, link_time, cache_time, compute_time, cost.floor_seconds
        )
