"""GPU execution substrate: a SIMT device + analytic performance model.

The paper's results were measured on Titan Xp / V100 GPUs.  Without GPU
hardware we substitute a simulator (see DESIGN.md):

* kernels execute **functionally** in vectorized NumPy — decoded edges,
  BFS levels, SSSP distances, PageRank values are exact;
* every kernel launch records the memory traffic it actually generated
  (bytes per array, access pattern, residency) plus an instruction
  count, and an analytic :class:`CostModel` converts that into a
  deterministic simulated runtime.

The performance story the paper tells is bandwidth arithmetic — device
DRAM is ~35-60x faster than the PCIe link — so charging measured
traffic at the right bandwidth preserves who-wins and crossover shapes.
"""

from repro.gpusim.cost import AccessPattern, CostModel, CostParams, KernelCost
from repro.gpusim.device import CPU_E5_2696V4_X2, DeviceSpec, TITAN_XP, V100
from repro.gpusim.engine import SimEngine
from repro.gpusim.kernel import KernelLaunch
from repro.gpusim.memory import MemoryManager, Residency
from repro.gpusim.trace import timeline_events, write_chrome_trace
from repro.gpusim.uvm import UVMSimulator

__all__ = [
    "DeviceSpec",
    "TITAN_XP",
    "V100",
    "CPU_E5_2696V4_X2",
    "MemoryManager",
    "Residency",
    "CostModel",
    "CostParams",
    "KernelCost",
    "AccessPattern",
    "KernelLaunch",
    "SimEngine",
    "UVMSimulator",
    "timeline_events",
    "write_chrome_trace",
]
