"""Device specifications (paper Table I + Sec. VIII-E).

Bandwidths are the paper's measured numbers: Titan Xp 417.4 GB/s
device-to-device vs 12.1 GB/s host-to-device over PCIe 3.0 (a ~35x
gap); V100 731.3 GiB/s HBM on the same PCIe link (~60x gap).

``scaled_capacity`` produces a device with a *smaller memory* but the
same bandwidth ratios: our synthetic graphs are 10^4-10^6 edges, so the
simulated capacity is shrunk proportionally to recreate the paper's
three regions (fits / fits-after-compression / never-fits) at
laptop scale.  Region membership depends only on size relative to
capacity, and GTEPS depends only on traffic over bandwidth, so the
shapes survive the rescaling.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["DeviceSpec", "TITAN_XP", "V100", "CPU_E5_2696V4_X2"]

GIB = 1024**3


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of one (simulated) processor.

    Attributes
    ----------
    name:
        Display name.
    memory_bytes:
        Device memory capacity (the 12 GiB / 32 GiB of the paper).
    dram_bandwidth:
        Internal memory bandwidth, bytes/s (DtoD in Table I).
    link_bandwidth:
        Host interconnect bandwidth, bytes/s (HtoD in Table I).
    num_sms:
        Streaming multiprocessors (or CPU cores for a CPU spec).
    lanes_per_sm:
        SIMD lanes per SM (CUDA cores / SM; SIMD width for CPUs).
    clock_hz:
        Core clock.
    sector_bytes:
        DRAM transaction granularity — an uncoalesced access still
        moves a whole sector.
    link_line_bytes:
        Zero-copy transfer granularity over the interconnect (EMOGI
        streams at cacheline granularity).
    launch_overhead_s:
        Fixed cost per kernel launch.
    is_gpu:
        False for the CPU comparator (Ligra+ runs there).
    """

    name: str
    memory_bytes: int
    dram_bandwidth: float
    link_bandwidth: float
    num_sms: int
    lanes_per_sm: int
    clock_hz: float
    sector_bytes: int = 32
    link_line_bytes: int = 128
    launch_overhead_s: float = 5e-6
    is_gpu: bool = True

    @property
    def instruction_throughput(self) -> float:
        """Peak simple-instruction rate across the chip (instr/s)."""
        return self.num_sms * self.lanes_per_sm * self.clock_hz

    @property
    def bandwidth_ratio(self) -> float:
        """DRAM over link bandwidth (~35x Titan Xp, ~60x V100)."""
        return self.dram_bandwidth / self.link_bandwidth

    def scaled_capacity(self, memory_bytes: int) -> "DeviceSpec":
        """Same silicon, smaller memory — for scaled-down datasets."""
        if memory_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {memory_bytes}")
        return replace(self, memory_bytes=memory_bytes)

    def scaled(self, factor: float) -> "DeviceSpec":
        """Scale the device down by ``factor`` for miniature datasets.

        Divides the memory capacity *and* the kernel launch overhead by
        ``factor`` while keeping every bandwidth and throughput intact.
        Rationale: our synthetic graphs are ~``factor``x smaller than
        the paper's, so per-level kernel times shrink by ~``factor``;
        shrinking the fixed overhead equally preserves the paper's
        ratio of overhead to bandwidth-bound time (otherwise launch
        overhead would swamp every measurement at miniature scale).
        """
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        return replace(
            self,
            memory_bytes=max(1, int(self.memory_bytes / factor)),
            launch_overhead_s=self.launch_overhead_s / factor,
        )


#: Paper Table I: Titan Xp, 12 GiB, PCIe 3.0.
TITAN_XP = DeviceSpec(
    name="Titan Xp",
    memory_bytes=12 * GIB,
    dram_bandwidth=417.4e9,
    link_bandwidth=12.1e9,
    num_sms=30,
    lanes_per_sm=128,
    clock_hz=1.58e9,
)

#: Sec. VIII-E: V100, 32 GiB HBM2, 731.3 GiB/s, same PCIe 3.0 link.
V100 = DeviceSpec(
    name="V100",
    memory_bytes=32 * GIB,
    dram_bandwidth=731.3 * GIB,
    link_bandwidth=12.1e9,
    num_sms=80,
    lanes_per_sm=64,
    clock_hz=1.53e9,
)

#: The paper's CPU host: 2x E5-2696 v4 (44 cores / 88 threads).
#: Ligra+(TD) runs here; ~77 GB/s aggregate DRAM bandwidth per the
#: platform's 4-channel DDR4-2400 x 2 sockets.  It has no PCIe penalty
#: (the graph always "fits") but an order of magnitude less bandwidth
#: and parallelism than the GPU.
CPU_E5_2696V4_X2 = DeviceSpec(
    name="2x E5-2696 v4",
    memory_bytes=256 * GIB,
    dram_bandwidth=77e9,
    link_bandwidth=77e9,
    num_sms=44,
    lanes_per_sm=8,
    clock_hz=2.2e9,
    sector_bytes=64,
    link_line_bytes=64,
    launch_overhead_s=2e-6,
    is_gpu=False,
)
