"""Multi-GPU BFS — the Intro's alternative to compression.

The paper's introduction lists distribution over multiple GPUs [1-3]
as one answer to graphs that exceed device memory, with "higher
implementation complexity and hardware costs" as the trade-off; EFG is
positioned as the complementary single-GPU answer.  This module
implements the classic 1-D partitioned BFS so the two answers can be
compared head-to-head in the simulator:

* vertices are range-partitioned; each GPU stores the out-lists of its
  own vertices (in CSR or EFG) plus its shard of the visited bitmap
  and level array;
* each level, every GPU expands its share of the frontier locally,
  buckets discovered neighbours by owner, and exchanges them all-to-all
  over the inter-GPU links;
* owners claim unvisited vertices and the next frontier is the union
  of the local claims.

Per-level simulated time is ``max`` over GPUs of the local expand time
plus the all-to-all exchange time — the bulk-synchronous model used by
the multi-GPU systems the paper cites.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.formats.graph import Graph
from repro.gpusim.device import DeviceSpec
from repro.primitives.compact import atomic_or_claim
from repro.traversal.backends import CSRBackend, EFGBackend, GraphBackend

__all__ = ["MultiGPUBFSResult", "VertexPartition", "multi_gpu_bfs"]

#: PCIe peer-to-peer bandwidth between GPUs (no NVLink on a Titan Xp
#: class workstation; both directions share the host links).
DEFAULT_PEER_BANDWIDTH = 10e9


@dataclass(frozen=True)
class VertexPartition:
    """Contiguous 1-D vertex ranges, one per GPU."""

    boundaries: np.ndarray  # int64, num_gpus + 1, [0, ..., num_nodes]

    @classmethod
    def even(cls, num_nodes: int, num_gpus: int) -> "VertexPartition":
        """Split |V| into ``num_gpus`` near-equal contiguous ranges."""
        if num_gpus < 1:
            raise ValueError("need at least one GPU")
        bounds = np.linspace(0, num_nodes, num_gpus + 1).astype(np.int64)
        return cls(boundaries=bounds)

    @property
    def num_gpus(self) -> int:
        """Number of shards."""
        return int(self.boundaries.shape[0] - 1)

    def owner(self, vertices: np.ndarray) -> np.ndarray:
        """GPU id owning each vertex."""
        return (
            np.searchsorted(self.boundaries, vertices, side="right") - 1
        ).astype(np.int64)

    def subgraph(self, graph: Graph, gpu: int) -> Graph:
        """Out-lists of the vertices owned by ``gpu``.

        The shard keeps global vertex ids (standard 1-D partitioning):
        row ``v`` of the shard is empty unless ``gpu`` owns ``v``.
        """
        lo, hi = int(self.boundaries[gpu]), int(self.boundaries[gpu + 1])
        vlist = np.zeros(graph.num_nodes + 1, dtype=np.int64)
        degrees = np.zeros(graph.num_nodes, dtype=np.int64)
        degrees[lo:hi] = graph.degrees[lo:hi]
        np.cumsum(degrees, out=vlist[1:])
        elist = graph.elist[graph.vlist[lo] : graph.vlist[hi]]
        return Graph(
            vlist=vlist, elist=elist, directed=graph.directed,
            name=f"{graph.name}/gpu{gpu}",
        )


@dataclass(frozen=True)
class MultiGPUBFSResult:
    """Outcome of one distributed BFS run."""

    source: int
    levels: np.ndarray
    #: Number of BFS levels counting the source's level 0 (levels.max()+1).
    num_levels: int
    edges_traversed: int
    exchanged_bytes: int
    sim_seconds: float
    num_gpus: int

    @property
    def runtime_ms(self) -> float:
        """Simulated runtime in milliseconds."""
        return self.sim_seconds * 1e3

    @property
    def gteps(self) -> float:
        """Billions of traversed edges per simulated second."""
        if self.sim_seconds <= 0:
            return 0.0
        return self.edges_traversed / self.sim_seconds / 1e9


def _make_shard_backend(
    fmt: str, shard: Graph, device: DeviceSpec
) -> GraphBackend:
    if fmt == "csr":
        from repro.formats.csr import CSRGraph

        return CSRBackend(CSRGraph.from_graph(shard), device)
    if fmt == "efg":
        from repro.core.efg import efg_encode

        return EFGBackend(efg_encode(shard), device)
    raise ValueError(f"unsupported distributed format {fmt!r}")


def multi_gpu_bfs(
    graph: Graph,
    source: int,
    num_gpus: int,
    device: DeviceSpec,
    fmt: str = "csr",
    peer_bandwidth: float = DEFAULT_PEER_BANDWIDTH,
    partial_sort: bool = True,
) -> MultiGPUBFSResult:
    """1-D partitioned level-synchronous BFS over ``num_gpus`` devices.

    Parameters
    ----------
    graph:
        The full graph (partitioned internally).
    source:
        Start vertex.
    num_gpus:
        Number of simulated devices (each with ``device``'s specs).
    device:
        Per-GPU specification (capacity per GPU, not total).
    fmt:
        Shard storage format: ``"csr"`` or ``"efg"``.
    peer_bandwidth:
        Inter-GPU link bandwidth for the all-to-all frontier exchange.
    """
    nv = graph.num_nodes
    if not 0 <= source < nv:
        raise IndexError(f"source {source} out of range")
    partition = VertexPartition.even(nv, num_gpus)
    backends = [
        _make_shard_backend(fmt, partition.subgraph(graph, g), device)
        for g in range(num_gpus)
    ]
    for b in backends:
        b.engine.reset_timeline()

    levels = np.full(nv, -1, dtype=np.int64)
    visited = np.zeros(nv, dtype=bool)
    levels[source] = 0
    visited[source] = True
    owners_of = partition.owner(np.arange(nv, dtype=np.int64))
    # Per-GPU frontier shards (vertices each GPU must expand).
    frontiers: list[np.ndarray] = [
        np.array([source], dtype=np.int64) if g == owners_of[source] else
        np.empty(0, dtype=np.int64)
        for g in range(num_gpus)
    ]

    depth = 0
    edges_traversed = 0
    exchanged_bytes = 0
    total_seconds = 0.0

    while any(f.size for f in frontiers):
        level_local: list[float] = []
        outgoing: list[list[np.ndarray]] = [
            [np.empty(0, dtype=np.int64)] * num_gpus for _ in range(num_gpus)
        ]
        # --- local expansion on every GPU ---
        for g, backend in enumerate(backends):
            engine = backend.engine
            before = engine.elapsed_seconds
            frontier = frontiers[g]
            if frontier.size:
                if partial_sort and frontier.size > 1:
                    frontier = np.sort(frontier)
                with engine.launch("dist_expand") as k:
                    nbrs, _ = backend.expand(frontier, k)
                    k.read_stream("work:visited", nbrs, 1)
                edges_traversed += int(nbrs.shape[0])
                # Bucket by owner for the exchange.
                dest = owners_of[nbrs]
                order = np.argsort(dest, kind="stable")
                nbrs_sorted = nbrs[order]
                dest_sorted = dest[order]
                cuts = np.searchsorted(dest_sorted, np.arange(num_gpus + 1))
                with engine.launch("dist_bucket") as k:
                    k.instructions(6.0 * nbrs.shape[0])
                    k.write("work:frontier", int(nbrs.shape[0]), 4)
                for h in range(num_gpus):
                    outgoing[g][h] = nbrs_sorted[cuts[h] : cuts[h + 1]]
            level_local.append(engine.elapsed_seconds - before)

        # --- all-to-all exchange (bulk synchronous) ---
        wire = sum(
            4 * outgoing[g][h].shape[0]
            for g in range(num_gpus)
            for h in range(num_gpus)
            if g != h
        )
        exchanged_bytes += wire
        exchange_seconds = wire / peer_bandwidth if num_gpus > 1 else 0.0

        # --- owners claim and build next frontiers ---
        claim_seconds = 0.0
        next_frontiers: list[np.ndarray] = []
        depth += 1
        for h, backend in enumerate(backends):
            engine = backend.engine
            before = engine.elapsed_seconds
            incoming = np.concatenate(
                [outgoing[g][h] for g in range(num_gpus)]
            ) if num_gpus else np.empty(0, dtype=np.int64)
            with engine.launch("dist_claim") as k:
                fresh = incoming[~visited[incoming]]
                won = atomic_or_claim(visited, fresh)
                mine = fresh[won]
                k.read_stream("work:visited", incoming, 1)
                k.instructions(2.0 * incoming.shape[0])
                k.write("work:frontier", int(mine.shape[0]), 4)
            levels[mine] = depth
            next_frontiers.append(mine)
            claim_seconds = max(
                claim_seconds, engine.elapsed_seconds - before
            )
        frontiers = next_frontiers
        total_seconds += max(level_local) + exchange_seconds + claim_seconds

    return MultiGPUBFSResult(
        source=source,
        levels=levels,
        num_levels=int(levels.max()) + 1,
        edges_traversed=edges_traversed,
        exchanged_bytes=exchanged_bytes,
        sim_seconds=total_seconds,
        num_gpus=num_gpus,
    )
