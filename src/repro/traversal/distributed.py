"""Multi-GPU BFS — compatibility wrapper over :mod:`repro.dist`.

The paper's introduction lists distribution over multiple GPUs [1-3]
as one answer to graphs that exceed device memory, with "higher
implementation complexity and hardware costs" as the trade-off; EFG is
positioned as the complementary single-GPU answer.  The machinery that
makes the comparison honest — 1-D partitioning, per-link exchange cost,
frontier wire codecs, flat and butterfly schedules — lives in
:mod:`repro.dist` now; this module keeps the original
:func:`multi_gpu_bfs` entry point (and re-exports
:class:`~repro.dist.partition.VertexPartition`) on top of it.

Two accounting bugs of the original standalone implementation are gone
in the delegated version:

* frontiers are int64 on the device, yet the bucket/claim kernel writes
  and the exchange both charged 4 bytes per vertex id — everything now
  uses :data:`repro.dist.wire.FRONTIER_ID_BYTES` (the default ``raw64``
  wire format ships the device width unpacked; pass ``wire=`` for the
  compressed codecs);
* "partial_sort" ran a full ``np.sort`` — the frontier now goes through
  :func:`repro.primitives.sort.partial_sort_frontier` (65% of the id
  bits, Sec. VI-E) and the sort passes are charged on the kernel.

``contention=1.0`` with ``message_latency_s`` tied to the device keeps
the old single-shared-pipe timing model as the default; lower it (or
build a :class:`~repro.dist.topology.LinkTopology` directly) for
per-link overlap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dist.partition import VertexPartition
from repro.dist.topology import DEFAULT_PEER_BANDWIDTH, LinkTopology
from repro.formats.graph import Graph
from repro.gpusim.device import DeviceSpec

__all__ = ["MultiGPUBFSResult", "VertexPartition", "multi_gpu_bfs"]


@dataclass(frozen=True)
class MultiGPUBFSResult:
    """Outcome of one distributed BFS run."""

    source: int
    levels: np.ndarray
    #: Number of BFS levels counting the source's level 0 (levels.max()+1).
    num_levels: int
    edges_traversed: int
    exchanged_bytes: int
    sim_seconds: float
    num_gpus: int

    @property
    def runtime_ms(self) -> float:
        """Simulated runtime in milliseconds."""
        return self.sim_seconds * 1e3

    @property
    def gteps(self) -> float:
        """Billions of traversed edges per simulated second."""
        if self.sim_seconds <= 0:
            return 0.0
        return self.edges_traversed / self.sim_seconds / 1e9


def multi_gpu_bfs(
    graph: Graph,
    source: int,
    num_gpus: int,
    device: DeviceSpec,
    fmt: str = "csr",
    peer_bandwidth: float = DEFAULT_PEER_BANDWIDTH,
    partial_sort: bool = True,
    wire: str = "raw64",
    schedule: str = "flat",
    contention: float = 1.0,
) -> MultiGPUBFSResult:
    """1-D partitioned level-synchronous BFS over ``num_gpus`` devices.

    Parameters
    ----------
    graph:
        The full graph (partitioned internally).
    source:
        Start vertex.
    num_gpus:
        Number of simulated devices (each with ``device``'s specs).
    device:
        Per-GPU specification (capacity per GPU, not total).
    fmt:
        Shard storage format: ``"csr"`` or ``"efg"``.
    peer_bandwidth:
        Inter-GPU link bandwidth for the frontier exchange.
    partial_sort:
        Partially sort each frontier shard before expansion (Sec. VI-E).
    wire:
        Frontier wire codec (default ships device-width int64 ids
        unpacked; see :data:`repro.dist.wire.WIRE_CODECS`).
    schedule:
        Exchange schedule, ``"flat"`` or ``"butterfly"``.
    contention:
        Shared-fabric contention of the links (1.0 = one shared pipe,
        the historical model).
    """
    # Imported here, not at module top: repro.dist builds on
    # repro.traversal.backends, so a module-level import would cycle
    # through this package's __init__.
    from repro.dist.bfs import distributed_bfs
    from repro.dist.cluster import ShardedCluster

    topology = LinkTopology(
        num_gpus=num_gpus,
        link_bandwidth=peer_bandwidth,
        contention=contention,
        message_latency_s=device.launch_overhead_s,
    )
    cluster = ShardedCluster.build(
        graph, num_gpus, device,
        fmt=fmt, wire=wire, schedule=schedule, topology=topology,
    )
    r = distributed_bfs(cluster, source, partial_sort=partial_sort)
    return MultiGPUBFSResult(
        source=r.source,
        levels=r.levels,
        num_levels=r.num_levels,
        edges_traversed=r.edges_traversed,
        exchanged_bytes=r.exchanged_bytes,
        sim_seconds=r.sim_seconds,
        num_gpus=r.num_gpus,
    )
