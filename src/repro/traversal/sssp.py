"""Single-source shortest paths by frontier relaxation (Sec. VI-F).

Bellman-Ford-style: expand the active frontier, relax a float32
distance per candidate edge, mark improved vertices atomically in an
O(|V|) bitmap, and build the next frontier with a parallel scatter —
exactly the structure the paper describes.  Edge weights live in an
uncompressed O(|E|) float array in *both* CSR and EFG (weights are not
compressed), which is why SSSP hits the out-of-core regime much
earlier than BFS and produces the five regions of Fig. 10.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs.counters import arrays_since
from repro.obs.metrics import bytes_per_edge
from repro.primitives.compact import scatter_bitmap_to_indices
from repro.traversal.backends import GraphBackend

__all__ = ["SSSPResult", "sssp"]


@dataclass(frozen=True)
class SSSPResult:
    """Outcome of one SSSP run."""

    source: int
    distances: np.ndarray
    iterations: int
    edges_relaxed: int
    sim_seconds: float

    @property
    def gteps(self) -> float:
        """Billions of relaxed edges per simulated second."""
        if self.sim_seconds <= 0:
            return 0.0
        return self.edges_relaxed / self.sim_seconds / 1e9

    @property
    def runtime_ms(self) -> float:
        """Simulated runtime in milliseconds."""
        return self.sim_seconds * 1e3


def sssp(
    backend: GraphBackend,
    source: int,
    weights: np.ndarray,
    max_iterations: int | None = None,
) -> SSSPResult:
    """Shortest paths from ``source`` with non-negative edge weights.

    ``weights`` is indexed by CSR edge slot (``vlist[v] + n``); the
    backend must have been constructed with ``weight_bytes`` so the
    memory planner knows about the array (it streams over PCIe when it
    does not fit — regions 3-5 of Fig. 10).
    """
    nv = backend.num_nodes
    if not 0 <= source < nv:
        raise IndexError(f"source {source} out of range")
    weights = np.asarray(weights, dtype=np.float32)
    if weights.shape[0] != backend.num_edges:
        raise ValueError("one weight per stored arc required")
    if weights.size and weights.min() < 0:
        raise ValueError("sssp requires non-negative weights")
    engine = backend.engine
    if "weights" not in engine.memory.plan():
        raise RuntimeError("backend built without weight_bytes")
    engine.reset_timeline()

    dist = np.full(nv, np.inf, dtype=np.float64)
    dist[source] = 0.0
    frontier = np.array([source], dtype=np.int64)
    edges_relaxed = 0
    iterations = 0
    cap = max_iterations if max_iterations is not None else nv

    engine.tracer.open(
        "sssp", "algorithm", engine.elapsed_seconds, {"source": int(source)}
    )
    while frontier.size and iterations < cap:
        engine.metrics.observe("sssp.frontier_size", frontier.size)
        engine.sample("frontier_size", frontier.size)
        level_start = engine.num_launches
        with engine.span(
            f"iteration:{iterations}", "level",
            level=iterations, frontier_size=int(frontier.size),
        ) as sp:
            with engine.launch("sssp_relax") as k:
                nbrs, seg = backend.expand(frontier, k)
                slots = backend.edge_slots(frontier)
                cand = dist[frontier[seg]] + weights[slots]
                # Weight gather follows the per-list slot stream.
                k.read_stream("weights", slots, 4)
                # Distance probe + atomicMin per candidate.
                k.read_stream("work:labels", nbrs, 4)
                k.instructions(4.0 * nbrs.shape[0])
            edges_relaxed += int(nbrs.shape[0])

            with engine.launch("sssp_update") as k:
                improved_bitmap = np.zeros(nv, dtype=bool)
                if nbrs.size:
                    best = np.full(nv, np.inf, dtype=np.float64)
                    np.minimum.at(best, nbrs, cand)
                    better = best < dist
                    dist = np.where(better, best, dist)
                    improved_bitmap = better
                improved_count = int(improved_bitmap.sum())
                k.atomic("work:visited", improved_count, 1)
                k.instructions(2.0 * nbrs.shape[0])

            with engine.launch("sssp_scatter") as k:
                frontier = scatter_bitmap_to_indices(improved_bitmap)
                # Bitmap scan + compacted frontier write (Sec. VI-F).
                k.read("work:visited", nv, 1)
                k.write("work:frontier", int(frontier.shape[0]), 4)
                k.instructions(float(nv))
            iterations += 1
            sp.annotate(
                edges_expanded=int(nbrs.shape[0]),
                improved=improved_count,
                **arrays_since(engine, level_start),
            )
    engine.metrics.set_gauge(
        "sssp.bytes_per_edge", bytes_per_edge(engine, edges_relaxed)
    )
    engine.tracer.close(engine.elapsed_seconds)

    return SSSPResult(
        source=source,
        distances=dist,
        iterations=iterations,
        edges_relaxed=edges_relaxed,
        sim_seconds=engine.elapsed_seconds,
    )
