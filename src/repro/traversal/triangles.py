"""Triangle counting on compressed graphs.

Beyond frontier traversal, the other canonical graph-analytics kernel
is triangle counting, whose inner loop is *sorted-list intersection* —
a natural fit for Elias-Fano lists, which decode in sorted order and
support skip-ahead via forward pointers.

The implementation is the standard degree-ordered algorithm: orient
each undirected edge from its lower-(degree, id) endpoint to the
higher one, generate the oriented wedges (u -> v, u -> w with v < w in
the orientation), and probe whether the closing arc v -> w exists.
Orientation bounds per-vertex out-degree by ~sqrt(|E|), keeping the
wedge count near O(|E|^1.5) even on power-law graphs.

Costs are charged on the backend like every other kernel: one full
oriented-adjacency decode plus one binary-search probe per wedge.
Validated against networkx in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.efg import csr_gather_indices
from repro.formats.graph import Graph
from repro.traversal.backends import GraphBackend

__all__ = ["TriangleCountResult", "triangle_count"]


@dataclass(frozen=True)
class TriangleCountResult:
    """Outcome of one triangle-counting run."""

    triangles: int
    wedges_checked: int
    sim_seconds: float

    @property
    def runtime_ms(self) -> float:
        """Simulated runtime in milliseconds."""
        return self.sim_seconds * 1e3


def _oriented(graph: Graph) -> Graph:
    """Orient each undirected edge low->high by (degree, id)."""
    nv = graph.num_nodes
    deg = graph.degrees
    src = np.repeat(np.arange(nv, dtype=np.int64), deg)
    dst = graph.elist
    rank_src = deg[src] * np.int64(nv) + src
    rank_dst = deg[dst] * np.int64(nv) + dst
    keep = rank_src < rank_dst
    return Graph.from_edges(
        src[keep], dst[keep], num_nodes=nv, directed=True,
        name=f"{graph.name}_oriented",
    )


def triangle_count(
    backend: GraphBackend,
    wedge_chunk: int = 1 << 20,
) -> TriangleCountResult:
    """Count triangles of the (undirected) graph behind ``backend``.

    The backend must wrap a symmetrised graph (both arc directions
    present); each triangle is counted exactly once.

    Parameters
    ----------
    backend:
        Format backend; its decode cost is charged for reading the
        adjacency, and a probe per wedge for closing-arc membership.
    wedge_chunk:
        Wedges processed per simulated kernel launch (memory bound for
        the host process, not a correctness knob).
    """
    engine = backend.engine
    engine.reset_timeline()

    # Decode the full adjacency once through the backend (charged), then
    # orient it for wedge generation.
    nv = backend.num_nodes
    all_vertices = np.arange(nv, dtype=np.int64)
    with engine.launch("tc_decode") as k:
        nbrs, seg = backend.expand(all_vertices, k)
    full = Graph(
        vlist=np.concatenate([[0], np.cumsum(np.bincount(seg, minlength=nv))]),
        elist=nbrs,
        directed=False,
    )
    oriented = _oriented(full)
    odeg = oriented.degrees

    # Sorted key array of oriented arcs for membership probes.
    osrc = np.repeat(np.arange(nv, dtype=np.int64), odeg)
    keys = osrc * np.int64(nv) + oriented.elist  # already sorted

    # Wedge generation: for each arc (u, v) at local index i of u's
    # oriented list, pair v with every later neighbour w of u (j > i).
    arc_owner = osrc
    arc_pos = np.arange(oriented.num_edges, dtype=np.int64)
    local_i = arc_pos - oriented.vlist[arc_owner]
    seconds_per_arc = odeg[arc_owner] - local_i - 1
    total_wedges = int(seconds_per_arc.sum())
    triangles = 0
    if total_wedges:
        # Flat indices of the w elements, chunked to bound host memory.
        w_idx_all, wedge_arc = csr_gather_indices(arc_pos + 1, seconds_per_arc)
        for start in range(0, total_wedges, wedge_chunk):
            stop = min(start + wedge_chunk, total_wedges)
            w_vals = oriented.elist[w_idx_all[start:stop]]
            v_vals = oriented.elist[wedge_arc[start:stop]]
            # The closing arc is oriented low->high by (degree, id),
            # which need not match the id order the wedge pair came in.
            deg_all = full.degrees
            rank_v = deg_all[v_vals] * np.int64(nv) + v_vals
            rank_w = deg_all[w_vals] * np.int64(nv) + w_vals
            lo = np.where(rank_v < rank_w, v_vals, w_vals)
            hi = np.where(rank_v < rank_w, w_vals, v_vals)
            probe = lo * np.int64(nv) + hi
            pos = np.searchsorted(keys, probe)
            in_range = pos < keys.shape[0]
            hit = in_range & (
                keys[np.minimum(pos, keys.shape[0] - 1)] == probe
            )
            triangles += int(hit.sum())
            with engine.launch("tc_probe") as k:
                # One binary-search probe per wedge: log2(m) dependent
                # reads into the arc-key array plus index math.
                n_wedges = stop - start
                k.read_stream("work:labels", probe % max(nv, 1), 8)
                k.instructions(
                    (12.0 + 2.0 * np.log2(max(keys.shape[0], 2))) * n_wedges
                )

    return TriangleCountResult(
        triangles=triangles,
        wedges_checked=total_wedges,
        sim_seconds=engine.elapsed_seconds,
    )
