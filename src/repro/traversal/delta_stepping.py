"""Delta-stepping SSSP — the classic GPU shortest-path algorithm.

The paper's SSSP is plain frontier relaxation (Bellman-Ford style,
Sec. VI-F).  Production GPU SSSP implementations (Gunrock, ADDS,
Davidson et al.'s near-far) use *delta-stepping*: distances are
bucketed at granularity ``delta``; the current bucket's vertices relax
their **light** edges (weight < delta, which can re-enter the same
bucket) to a fixpoint before everyone's **heavy** edges are relaxed
once.  Compared to frontier relaxation it wastes far fewer relaxations
on vertices whose tentative distance will still improve.

The implementation runs on the same format backends, so the
compression trade-offs (structure resident, weights streamed) apply
unchanged; an ablation benchmark compares relaxation counts and
simulated runtime against the paper's variant.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs.counters import arrays_since
from repro.obs.metrics import bytes_per_edge
from repro.traversal.backends import GraphBackend

__all__ = ["DeltaSteppingResult", "delta_stepping_sssp", "suggest_delta"]


@dataclass(frozen=True)
class DeltaSteppingResult:
    """Outcome of one delta-stepping run."""

    source: int
    distances: np.ndarray
    delta: float
    buckets_processed: int
    light_phases: int
    edges_relaxed: int
    sim_seconds: float

    @property
    def runtime_ms(self) -> float:
        """Simulated runtime in milliseconds."""
        return self.sim_seconds * 1e3

    @property
    def gteps(self) -> float:
        """Billions of relaxed edges per simulated second."""
        if self.sim_seconds <= 0:
            return 0.0
        return self.edges_relaxed / self.sim_seconds / 1e9


def suggest_delta(weights: np.ndarray, degrees: np.ndarray) -> float:
    """The classic heuristic: mean weight / average degree scale.

    Meyer & Sanders suggest ``Theta(1 / max_degree)`` for uniform
    weights; in practice ``mean_weight * c`` with small c works well on
    power-law graphs.  We use mean weight divided by the root of the
    average degree — close to Gunrock's default policy.
    """
    mean_w = float(np.mean(weights)) if weights.size else 1.0
    avg_deg = float(np.mean(degrees[degrees > 0])) if degrees.size else 1.0
    return max(mean_w / max(np.sqrt(avg_deg), 1.0), 1e-9)


def delta_stepping_sssp(
    backend: GraphBackend,
    source: int,
    weights: np.ndarray,
    delta: float | None = None,
    max_buckets: int | None = None,
) -> DeltaSteppingResult:
    """Delta-stepping shortest paths from ``source``.

    Parameters
    ----------
    backend:
        Graph representation (must be constructed with ``weight_bytes``).
    source:
        Start vertex.
    weights:
        Non-negative float edge weights in CSR slot order.
    delta:
        Bucket width; defaults to :func:`suggest_delta`.
    max_buckets:
        Safety cap on processed buckets.
    """
    nv = backend.num_nodes
    if not 0 <= source < nv:
        raise IndexError(f"source {source} out of range")
    weights = np.asarray(weights, dtype=np.float32)
    if weights.shape[0] != backend.num_edges:
        raise ValueError("one weight per stored arc required")
    if weights.size and weights.min() < 0:
        raise ValueError("delta-stepping requires non-negative weights")
    engine = backend.engine
    if "weights" not in engine.memory.plan():
        raise RuntimeError("backend built without weight_bytes")
    engine.reset_timeline()
    if delta is None:
        delta = suggest_delta(weights, backend.degrees)
    if delta <= 0:
        raise ValueError(f"delta must be positive, got {delta}")

    dist = np.full(nv, np.inf, dtype=np.float64)
    dist[source] = 0.0
    edges_relaxed = 0
    light_phases = 0
    buckets_processed = 0
    cap = max_buckets if max_buckets is not None else 64 * nv

    def bucket_of(d: np.ndarray) -> np.ndarray:
        out = np.full(d.shape[0], np.iinfo(np.int64).max, dtype=np.int64)
        finite = np.isfinite(d)
        out[finite] = (d[finite] / delta).astype(np.int64)
        return out

    def relax(frontier: np.ndarray, light_only: bool) -> np.ndarray:
        """Relax frontier's (light|heavy) edges; return improved verts."""
        nonlocal edges_relaxed
        with engine.launch("ds_relax") as k:
            nbrs, seg = backend.expand(frontier, k)
            slots = backend.edge_slots(frontier)
            w = weights[slots]
            mask = (w < delta) if light_only else (w >= delta)
            cand = dist[frontier[seg[mask]]] + w[mask]
            targets = nbrs[mask]
            k.read_stream("weights", slots, 4)
            k.read_stream("work:labels", nbrs, 4)
            k.instructions(4.0 * nbrs.shape[0])
        edges_relaxed += int(mask.sum())
        if targets.size == 0:
            return np.empty(0, dtype=np.int64)
        best = np.full(nv, np.inf, dtype=np.float64)
        np.minimum.at(best, targets, cand)
        improved = best < dist
        dist[improved] = best[improved]
        with engine.launch("ds_update") as k:
            k.atomic("work:labels", int(improved.sum()), 4)
            k.instructions(2.0 * targets.shape[0])
        return np.flatnonzero(improved)

    engine.tracer.open(
        "delta_stepping", "algorithm", engine.elapsed_seconds,
        {"source": int(source), "delta": float(delta)},
    )
    current = 0
    while buckets_processed < cap:
        in_bucket = np.flatnonzero(bucket_of(dist) == current)
        if in_bucket.size == 0:
            finite = np.isfinite(dist)
            remaining = bucket_of(dist[finite])
            ahead = remaining[remaining > current]
            if ahead.size == 0:
                break
            current = int(ahead.min())
            continue
        engine.metrics.observe("delta_stepping.bucket_size", in_bucket.size)
        engine.sample("frontier_size", in_bucket.size)
        level_start = engine.num_launches
        with engine.span(
            f"bucket:{current}", "level",
            level=current, frontier_size=int(in_bucket.size),
        ) as sp:
            phases_before = light_phases
            edges_before = edges_relaxed
            settled: list[np.ndarray] = []
            frontier = in_bucket
            # Light-edge fixpoint within the bucket.
            while frontier.size:
                settled.append(frontier)
                light_phases += 1
                improved = relax(frontier, light_only=True)
                frontier = improved[bucket_of(dist[improved]) == current]
            # Heavy edges once for everything settled in this bucket.
            all_settled = np.unique(np.concatenate(settled))
            relax(all_settled, light_only=False)
            buckets_processed += 1
            current += 1
            sp.annotate(
                light_phases=light_phases - phases_before,
                edges_expanded=edges_relaxed - edges_before,
                **arrays_since(engine, level_start),
            )
    engine.metrics.set_gauge(
        "delta_stepping.bytes_per_edge", bytes_per_edge(engine, edges_relaxed)
    )
    engine.tracer.close(engine.elapsed_seconds)

    return DeltaSteppingResult(
        source=source,
        distances=dist,
        delta=float(delta),
        buckets_processed=buckets_processed,
        light_phases=light_phases,
        edges_relaxed=edges_relaxed,
        sim_seconds=engine.elapsed_seconds,
    )
