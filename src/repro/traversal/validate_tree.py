"""Graph500-style BFS output validation.

The Graph500 benchmark specifies five checks for a claimed BFS tree;
:func:`validate_bfs_tree` implements them against our
:class:`~repro.traversal.bfs.BFSResult`:

1. the source is its own parent at level 0;
2. reached sets agree between ``levels`` and ``parents``;
3. every tree edge ``(parents[v], v)`` exists in the graph;
4. levels increase by exactly one along tree edges;
5. no graph edge spans more than one level (both endpoints reached),
   and no reached->unreached edge exists.

Used by the test suite as an independent check of every backend's BFS
(stronger than comparing levels alone: it also pins the parent tree).
"""

from __future__ import annotations

import numpy as np

from repro.formats.graph import Graph

__all__ = ["validate_bfs_tree", "BFSValidationError"]


class BFSValidationError(AssertionError):
    """A Graph500 validation rule failed."""


def validate_bfs_tree(
    graph: Graph, source: int, levels: np.ndarray, parents: np.ndarray
) -> None:
    """Raise :class:`BFSValidationError` unless the BFS output is valid."""
    nv = graph.num_nodes
    levels = np.asarray(levels)
    parents = np.asarray(parents)
    if levels.shape != (nv,) or parents.shape != (nv,):
        raise BFSValidationError("levels/parents shape mismatch")

    # (1) root conventions.
    if parents[source] != source or levels[source] != 0:
        raise BFSValidationError("source must be its own parent at level 0")

    # (2) reached sets agree.
    reached_l = levels >= 0
    reached_p = parents >= 0
    if not np.array_equal(reached_l, reached_p):
        raise BFSValidationError("levels and parents disagree on reachability")

    # (3) tree edges exist; (4) levels step by one along them.
    verts = np.flatnonzero(reached_l)
    verts = verts[verts != source]
    if verts.size:
        pars = parents[verts]
        if np.any(levels[verts] != levels[pars] + 1):
            raise BFSValidationError("tree edge does not step one level")
        # Edge existence: binary search each child in its parent's row.
        starts = graph.vlist[pars]
        ends = graph.vlist[pars + 1]
        pos = np.empty(verts.shape[0], dtype=np.int64)
        for i, (s, e, child) in enumerate(zip(starts, ends, verts)):
            row = graph.elist[s:e]
            j = np.searchsorted(row, child)
            pos[i] = 1 if j < row.shape[0] and row[j] == child else 0
        if not pos.all():
            raise BFSValidationError("claimed tree edge missing from graph")

    # (5) no edge skips a level or escapes the reached set.
    src = np.repeat(np.arange(nv, dtype=np.int64), graph.degrees)
    dst = graph.elist
    from_reached = reached_l[src]
    if np.any(~reached_l[dst[from_reached]]):
        raise BFSValidationError("edge from reached to unreached vertex")
    both = from_reached
    if np.any(levels[dst[both]] > levels[src[both]] + 1):
        raise BFSValidationError("graph edge spans more than one level")
