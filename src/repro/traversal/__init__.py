"""Graph analytics over CSR / EFG / CGR / Ligra+ backends.

Level-synchronous BFS (Alg. 1), frontier-relaxation SSSP and push-style
PageRank, each running functionally in vectorized NumPy on a
:class:`~repro.gpusim.SimEngine` that charges the traffic the chosen
graph representation actually generates.
"""

from repro.traversal.backends import (
    CGRBackend,
    CSRBackend,
    EFGBackend,
    GraphBackend,
    LigraBackend,
)
from repro.traversal.betweenness import BetweennessResult, betweenness_centrality
from repro.traversal.bfs import BFSResult, bfs
from repro.traversal.components import (
    ComponentsResult,
    connected_components,
    connected_components_lp,
)
from repro.traversal.delta_stepping import (
    DeltaSteppingResult,
    delta_stepping_sssp,
)
from repro.traversal.direction_optimizing import (
    DirectionOptimizingResult,
    bfs_direction_optimizing,
)
from repro.traversal.distributed import (
    MultiGPUBFSResult,
    VertexPartition,
    multi_gpu_bfs,
)
from repro.traversal.kcore import KCoreResult, kcore_decomposition
from repro.traversal.pagerank import PageRankResult, pagerank
from repro.traversal.sssp import SSSPResult, sssp
from repro.traversal.triangles import TriangleCountResult, triangle_count
from repro.traversal.validate_tree import BFSValidationError, validate_bfs_tree
from repro.traversal.validate import (
    reference_bfs_levels,
    reference_pagerank,
    reference_sssp_distances,
)

__all__ = [
    "GraphBackend",
    "CSRBackend",
    "EFGBackend",
    "CGRBackend",
    "LigraBackend",
    "bfs",
    "BFSResult",
    "bfs_direction_optimizing",
    "DirectionOptimizingResult",
    "connected_components",
    "connected_components_lp",
    "ComponentsResult",
    "betweenness_centrality",
    "BetweennessResult",
    "multi_gpu_bfs",
    "MultiGPUBFSResult",
    "VertexPartition",
    "sssp",
    "SSSPResult",
    "delta_stepping_sssp",
    "DeltaSteppingResult",
    "triangle_count",
    "TriangleCountResult",
    "kcore_decomposition",
    "KCoreResult",
    "pagerank",
    "PageRankResult",
    "reference_bfs_levels",
    "reference_sssp_distances",
    "reference_pagerank",
    "validate_bfs_tree",
    "BFSValidationError",
]
