"""Direction-optimizing BFS (the Sec. VII discussion, Beamer-style).

Ligra+ uses direction optimisation by default; the paper runs it
top-down for parity because bottom-up needs the *in*-edges too, which
"doubles the storage requirements for directed graphs".  This module
implements the hybrid as an extension so that trade-off can be
measured:

* **top-down** steps expand the frontier exactly like
  :func:`repro.traversal.bfs.bfs`;
* **bottom-up** steps scan every unvisited vertex's in-list for a
  frontier parent, stopping at the first hit — functionally exact, and
  the cost model charges only the *scanned prefix* of each compressed
  list (the early-exit that makes bottom-up pay off on large
  frontiers).

The switch uses Beamer's heuristics: go bottom-up when the frontier's
out-edge count exceeds ``|unvisited edges| / alpha``; return top-down
when the frontier shrinks below ``|V| / beta``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs.counters import arrays_since
from repro.primitives.compact import atomic_or_claim
from repro.traversal.backends import GraphBackend

__all__ = ["DirectionOptimizingResult", "bfs_direction_optimizing"]


@dataclass(frozen=True)
class DirectionOptimizingResult:
    """Outcome of one hybrid BFS run."""

    source: int
    levels: np.ndarray
    #: Number of BFS levels counting the source's level 0 (levels.max()+1).
    num_levels: int
    edges_examined: int
    bottom_up_levels: int
    sim_seconds: float

    @property
    def runtime_ms(self) -> float:
        """Simulated runtime in milliseconds."""
        return self.sim_seconds * 1e3


def bfs_direction_optimizing(
    out_backend: GraphBackend,
    in_backend: GraphBackend | None = None,
    source: int = 0,
    alpha: float = 15.0,
    beta: float = 18.0,
) -> DirectionOptimizingResult:
    """Hybrid top-down / bottom-up BFS.

    Parameters
    ----------
    out_backend:
        Backend over the out-edges (drives top-down steps and the
        simulated engine/timeline).
    in_backend:
        Backend over the in-edges for bottom-up steps.  For undirected
        (symmetrised) graphs pass ``None`` to reuse ``out_backend`` —
        that is the storage-free case; for directed graphs a separate
        in-edge structure doubles storage (the paper's Sec. VII point).
    alpha, beta:
        Beamer's switching thresholds.
    """
    if in_backend is None:
        in_backend = out_backend
    nv = out_backend.num_nodes
    if not 0 <= source < nv:
        raise IndexError(f"source {source} out of range")
    engine = out_backend.engine
    engine.reset_timeline()

    levels = np.full(nv, -1, dtype=np.int64)
    visited = np.zeros(nv, dtype=bool)
    levels[source] = 0
    visited[source] = True
    frontier = np.array([source], dtype=np.int64)
    in_frontier = np.zeros(nv, dtype=bool)

    out_deg = out_backend.degrees
    unexplored_edges = int(out_deg.sum()) - int(out_deg[source])
    depth = 0
    edges_examined = 0
    bottom_up_levels = 0

    engine.tracer.open(
        "direction_optimizing", "algorithm", engine.elapsed_seconds,
        {"source": int(source), "alpha": alpha, "beta": beta},
    )
    while frontier.size:
        frontier_edges = int(out_deg[frontier].sum())
        go_bottom_up = (
            unexplored_edges > 0
            and frontier_edges > unexplored_edges / alpha
            and frontier.size > nv / beta
        )
        direction = "bottom_up" if go_bottom_up else "top_down"
        engine.metrics.observe("dobfs.frontier_size", frontier.size)
        engine.metrics.inc(f"dobfs.levels_{direction}")
        engine.sample("frontier_size", frontier.size)
        level_start = engine.num_launches
        with engine.span(
            f"level:{depth}", "level",
            level=depth, frontier_size=int(frontier.size), direction=direction,
        ) as sp:
            if go_bottom_up:
                bottom_up_levels += 1
                in_frontier[:] = False
                in_frontier[frontier] = True
                candidates = np.flatnonzero(~visited)
                with engine.launch("bfs_bottom_up") as k:
                    scanned, found = _bottom_up_step(
                        in_backend, candidates, in_frontier, k
                    )
                edges_examined += scanned
                sp.annotate(edges_expanded=scanned)
                next_vertices = found
                visited[next_vertices] = True
            else:
                with engine.launch("bfs_top_down") as k:
                    nbrs, _ = out_backend.expand(frontier, k)
                    k.read_stream("work:visited", nbrs, 1)
                edges_examined += int(nbrs.shape[0])
                sp.annotate(edges_expanded=int(nbrs.shape[0]))
                with engine.launch("bfs_filter") as k:
                    fresh = nbrs[~visited[nbrs]]
                    won = atomic_or_claim(visited, fresh)
                    next_vertices = fresh[won]
                    k.instructions(2.0 * fresh.shape[0])
                    k.write("work:frontier", int(next_vertices.shape[0]), 4)

            unexplored_edges -= int(out_deg[next_vertices].sum())
            depth += 1
            levels[next_vertices] = depth
            frontier = next_vertices
            sp.annotate(
                claimed=int(next_vertices.shape[0]),
                **arrays_since(engine, level_start),
            )
    engine.tracer.close(engine.elapsed_seconds)

    return DirectionOptimizingResult(
        source=source,
        levels=levels,
        num_levels=int(levels.max()) + 1,
        edges_examined=edges_examined,
        bottom_up_levels=bottom_up_levels,
        sim_seconds=engine.elapsed_seconds,
    )


def _bottom_up_step(
    in_backend: GraphBackend,
    candidates: np.ndarray,
    in_frontier: np.ndarray,
    kernel,
) -> tuple[int, np.ndarray]:
    """One bottom-up level: find a frontier parent per candidate.

    Returns ``(edges_scanned, newly_found_vertices)``.  Functionally
    each candidate's in-list is decoded in full; the *charge* covers
    only the prefix up to (and including) the first frontier parent,
    which is what the early-exiting kernel reads.
    """
    if candidates.size == 0:
        return 0, candidates
    nbrs, seg = in_backend._decode(candidates)
    hit = in_frontier[nbrs]
    deg = in_backend.degrees[candidates]

    # Per candidate: position of the first hit, else full degree.
    from repro.primitives.scan import exclusive_scan

    ex, total = exclusive_scan(deg)
    local = np.arange(total, dtype=np.int64) - ex[seg]
    first_hit = np.full(candidates.shape[0], 2**62, dtype=np.int64)
    hit_idx = np.flatnonzero(hit)
    if hit_idx.size:
        np.minimum.at(first_hit, seg[hit_idx], local[hit_idx])
    found_mask = first_hit < 2**62

    scanned = np.where(found_mask, first_hit + 1, deg)
    total_scanned = int(scanned.sum())
    in_backend.charge_scan_prefix(candidates, scanned, kernel)
    return total_scanned, candidates[found_mask]
