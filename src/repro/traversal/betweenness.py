"""Betweenness centrality via Brandes' algorithm (Sec. I / III-B).

One of the analytics the paper names as implementable "using a similar
approach": each source's contribution is two frontier sweeps — a
forward level-synchronous BFS accumulating shortest-path counts, and a
backward dependency accumulation over the same levels.  Both sweeps
expand frontiers through the backend, so the per-format decode costs
are charged exactly like BFS.

Exact betweenness is O(|V| * |E|); callers sample sources (the
standard approximation) via ``sources=``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.traversal.backends import GraphBackend

__all__ = ["BetweennessResult", "betweenness_centrality"]


@dataclass(frozen=True)
class BetweennessResult:
    """Outcome of a (sampled) betweenness run."""

    scores: np.ndarray
    num_sources: int
    edges_traversed: int
    sim_seconds: float

    @property
    def runtime_ms(self) -> float:
        """Simulated runtime in milliseconds."""
        return self.sim_seconds * 1e3


def betweenness_centrality(
    backend: GraphBackend,
    sources: np.ndarray | None = None,
    normalized: bool = True,
) -> BetweennessResult:
    """Brandes betweenness from the given (or all) source vertices."""
    nv = backend.num_nodes
    engine = backend.engine
    engine.reset_timeline()
    if sources is None:
        sources = np.arange(nv, dtype=np.int64)
    else:
        sources = np.asarray(sources, dtype=np.int64)
        if sources.size and (sources.min() < 0 or sources.max() >= nv):
            raise IndexError("source out of range")

    scores = np.zeros(nv, dtype=np.float64)
    edges_traversed = 0

    for s in sources:
        # --- forward sweep: levels + shortest-path counts ---
        dist = np.full(nv, -1, dtype=np.int64)
        sigma = np.zeros(nv, dtype=np.float64)
        dist[s] = 0
        sigma[s] = 1.0
        frontier = np.array([s], dtype=np.int64)
        levels: list[np.ndarray] = [frontier]
        depth = 0
        while frontier.size:
            with engine.launch("bc_forward") as k:
                nbrs, seg = backend.expand(frontier, k)
                k.read_stream("work:labels", nbrs, 4)
                k.instructions(6.0 * nbrs.shape[0])
            edges_traversed += int(nbrs.shape[0])
            depth += 1
            # Vertices first reached at this depth.
            fresh_mask = dist[nbrs] == -1
            fresh = np.unique(nbrs[fresh_mask])
            dist[fresh] = depth
            # sigma[w] += sigma[v] over tree/equal-level edges.
            on_shortest = dist[nbrs] == depth
            np.add.at(sigma, nbrs[on_shortest], sigma[frontier[seg[on_shortest]]])
            frontier = fresh
            if frontier.size:
                levels.append(frontier)

        # --- backward sweep: dependency accumulation ---
        delta = np.zeros(nv, dtype=np.float64)
        for level in reversed(levels[1:]):
            with engine.launch("bc_backward") as k:
                nbrs, seg = backend.expand(level, k)
                k.read_stream("work:labels", nbrs, 8)
                k.instructions(8.0 * nbrs.shape[0])
            edges_traversed += int(nbrs.shape[0])
            srcs = level[seg]
            # Edge (v in level) -> (w one level deeper) contributes
            # sigma[v]/sigma[w] * (1 + delta[w]) to delta[v].
            deeper = dist[nbrs] == dist[srcs] + 1
            contrib = np.zeros(nbrs.shape[0], dtype=np.float64)
            d_idx = np.flatnonzero(deeper)
            if d_idx.size:
                w = nbrs[d_idx]
                v = srcs[d_idx]
                contrib[d_idx] = sigma[v] / sigma[w] * (1.0 + delta[w])
                np.add.at(delta, v, contrib[d_idx])
        mask = np.ones(nv, dtype=bool)
        mask[s] = False
        scores[mask] += delta[mask]

    if normalized and nv > 2:
        # Matches networkx: directed raw * 1/((n-1)(n-2)); undirected
        # raw is double-counted and its normalizer is 2x, so the same
        # factor applies either way.  Sampled sources rescale by n/k.
        scale = 1.0 / ((nv - 1) * (nv - 2))
        scores = scores * scale * (nv / max(len(sources), 1))

    return BetweennessResult(
        scores=scores,
        num_sources=int(len(sources)),
        edges_traversed=edges_traversed,
        sim_seconds=engine.elapsed_seconds,
    )

