"""Bit-parallel multi-source BFS: one decode serves up to 64 traversals.

Serving heavy query traffic means running *many* BFS instances, and the
expensive part of every level is decoding the frontier's compressed
lists (Sec. VI-B: ~70 instructions per edge for EFG).  When sources are
batched, the per-source frontiers overlap heavily — especially around
hubs — so running them independently re-decodes the same lists over and
over.

This module packs up to 64 concurrent sources into per-vertex ``uint64``
bitmasks (the MS-BFS technique of Then et al., VLDB'14, here fused with
the paper's decode pipeline):

* ``visited[v]`` — bit ``s`` set iff source ``s`` has reached ``v``.
* ``frontier[v]`` — bit ``s`` set iff ``v`` is on source ``s``'s current
  frontier.

Each level expands the *union* frontier (every vertex with any frontier
bit) exactly once: the backend decodes each active list one time — with
a :class:`~repro.core.listcache.DecodedListCache` attached, hot lists
are not even decoded once per level but streamed from on-chip memory —
and a single 64-wide OR per edge propagates all sources' reachability
simultaneously.  Newly set bits become the next frontier, and the level
index is recorded per (source, vertex) pair.

The per-source levels are bit-identical to 64 independent
:func:`repro.traversal.bfs.bfs` runs (asserted by the test suite): BFS
levels are deterministic regardless of traversal interleaving.

A convenient structural bonus: the union frontier is materialised with
``np.flatnonzero`` over the bitmask array, so it is always sorted by
vertex id — the locality the Sec. VI-E partial frontier sort buys for
single-source BFS comes for free here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.listcache import CacheStats
from repro.obs.counters import arrays_since
from repro.obs.metrics import bytes_per_edge
from repro.primitives.bitops import popcount_u64
from repro.traversal.backends import GraphBackend

__all__ = ["MSBFSResult", "msbfs", "MAX_SOURCES"]

#: Lane capacity of one bitmask word (uint64).
MAX_SOURCES = 64

#: Per-edge mask-propagation instructions besides the OR itself
#: (candidate-mask load, new-bit test, enqueue arithmetic).
MASK_INSTR_PER_EDGE = 6.0


@dataclass(frozen=True)
class MSBFSResult:
    """Outcome of one bit-parallel multi-source BFS batch.

    ``levels[s, v]`` is the BFS level of vertex ``v`` from
    ``sources[s]`` (-1 when unreached) — row ``s`` equals
    ``bfs(backend, sources[s]).levels``.
    """

    sources: np.ndarray
    levels: np.ndarray
    #: Number of BFS levels of the *deepest* source (levels.max() + 1).
    num_levels: int
    #: Distinct mask lanes the batch ran (duplicate sources share one).
    num_lanes: int
    #: Sum over sources of the edges its traversal would have examined
    #: (the work the batch amortizes; GTEPS uses this numerator).
    edges_traversed: int
    #: Lists actually decoded by the batch (union-frontier visits that
    #: missed the cache, or all of them without a cache).
    lists_decoded: int
    sim_seconds: float
    cache_stats: CacheStats | None = None

    @property
    def num_sources(self) -> int:
        """Number of requested sources (queries); duplicates included."""
        return int(self.sources.shape[0])

    @property
    def gteps(self) -> float:
        """Billions of per-source traversed edges per simulated second."""
        if self.sim_seconds <= 0:
            return 0.0
        return self.edges_traversed / self.sim_seconds / 1e9

    @property
    def seconds_per_source(self) -> float:
        """Amortized simulated time of one traversal in the batch."""
        return self.sim_seconds / max(1, self.num_sources)

    def levels_for(self, source: int) -> np.ndarray:
        """Level array of one source in the batch (by vertex id)."""
        idx = np.flatnonzero(self.sources == source)
        if idx.size == 0:
            raise KeyError(f"source {source} not in this batch")
        return self.levels[int(idx[0])]


def msbfs(
    backend: GraphBackend,
    sources: np.ndarray,
    max_levels: int | None = None,
    reset_timeline: bool = True,
    reset_cache_stats: bool | None = None,
) -> MSBFSResult:
    """Breadth-first search from up to 64 distinct sources in one run.

    Parameters
    ----------
    backend:
        Graph representation bound to a simulated device.  Attach a
        :class:`~repro.core.listcache.DecodedListCache` first to also
        amortize decode work *across* levels and batches.
    sources:
        1-D array of start vertices.  Duplicates are allowed — a serving
        batcher naturally coalesces concurrent queries for the same hot
        source — and share one mask lane, with their result rows aliased
        back per query.  At most :data:`MAX_SOURCES` *distinct* vertices.
    max_levels:
        Optional safety cap on the number of expansion rounds.
    reset_timeline:
        Reset the engine timeline/metrics before the run (the
        stand-alone default).  Pass ``False`` when stacking waves onto
        one cumulative timeline, e.g. from
        :class:`repro.serve.GraphService`; ``sim_seconds`` is always
        this wave's time, not the cumulative clock.
    reset_cache_stats:
        Reset the decoded-list cache counters before the run.  Defaults
        to following ``reset_timeline``, so cross-wave cache reuse keeps
        accumulating in service mode.
    """
    nv = backend.num_nodes
    sources = np.asarray(sources, dtype=np.int64)
    if sources.ndim != 1 or sources.shape[0] == 0:
        raise ValueError("sources must be a non-empty 1-D array")
    # Duplicate queries share a lane: `lanes` are the distinct start
    # vertices (sorted by np.unique), `inverse` maps each query to its
    # lane so rows alias back per query at the end.
    lanes, inverse = np.unique(sources, return_inverse=True)
    num_lanes = int(lanes.shape[0])
    if num_lanes > MAX_SOURCES:
        raise ValueError(
            f"{num_lanes} distinct sources exceed the {MAX_SOURCES}-bit mask"
        )
    if lanes[0] < 0 or lanes[-1] >= nv:
        raise IndexError("source out of range")
    num_queries = int(sources.shape[0])
    #: queries per lane — the multiplicity each lane's edges count for.
    lane_counts = np.bincount(inverse, minlength=num_lanes)
    dup_lanes = np.flatnonzero(lane_counts > 1)

    engine = backend.engine
    if reset_timeline:
        engine.reset_timeline()
    if reset_cache_stats is None:
        reset_cache_stats = reset_timeline
    if reset_cache_stats and backend.cache is not None:
        backend.cache.reset_stats()
    lists_decoded_before = backend.lists_decoded
    t_start = engine.elapsed_seconds

    # Working state the GPU kernels would keep resident: one uint64
    # visited mask, the current/next frontier masks, and the per-lane
    # level output written on first visit.
    mem = engine.memory
    mem.register("work:visited_mask", 8 * nv, priority=-1)
    mem.register("work:frontier_mask", 16 * nv, priority=-1)
    mem.register("work:mslevels", 4 * nv * num_lanes, priority=-1)

    lane_levels = np.full((num_lanes, nv), -1, dtype=np.int64)
    visited = np.zeros(nv, dtype=np.uint64)
    frontier_mask = np.zeros(nv, dtype=np.uint64)
    lane_bits = np.uint64(1) << np.arange(num_lanes, dtype=np.uint64)
    # Seed: lanes are distinct by construction; OR-accumulate would
    # handle shared vertices but cannot occur here.
    np.bitwise_or.at(visited, lanes, lane_bits)
    frontier_mask[lanes] = visited[lanes]
    lane_levels[np.arange(num_lanes), lanes] = 0

    depth = 0
    edges_traversed = 0
    cap = max_levels if max_levels is not None else nv
    engine.tracer.open(
        "msbfs", "algorithm", engine.elapsed_seconds,
        {"num_sources": num_queries, "num_lanes": num_lanes},
    )
    while depth < cap:
        active = np.flatnonzero(frontier_mask)
        if active.size == 0:
            break
        engine.metrics.observe("msbfs.union_frontier_size", active.size)
        engine.sample("frontier_size", active.size)

        level_start = engine.num_launches
        with engine.span(
            f"level:{depth}", "level",
            level=depth, frontier_size=int(active.size),
        ) as sp:
            with engine.launch("msbfs_expand") as k:
                nbrs, seg = backend.expand(active, k)
                # Candidate visited-mask probe: one 8 B word per edge, the
                # 64-source analogue of BFS's 1 B visited-flag probe.
                k.read_stream("work:visited_mask", nbrs, 8)
            # Every decoded edge carries the masks of all lanes whose
            # frontier contains its origin — each (source, edge) pair the
            # sequential runs would traverse separately.  A lane serving
            # m coalesced queries counts its edges m times: that is the
            # work m sequential runs would have done.
            active_masks = frontier_mask[active]
            src_per_edge = active_masks[seg]
            level_edges = int(popcount_u64(src_per_edge).sum())
            for s in dup_lanes.tolist():
                lane_edges = int(
                    ((src_per_edge >> np.uint64(s)) & np.uint64(1)).sum()
                )
                level_edges += (int(lane_counts[s]) - 1) * lane_edges
            edges_traversed += level_edges

            with engine.launch("msbfs_update") as k:
                next_mask = np.zeros(nv, dtype=np.uint64)
                np.bitwise_or.at(next_mask, nbrs, src_per_edge)
                new_bits = next_mask & ~visited
                visited |= new_bits
                depth += 1
                changed = np.flatnonzero(new_bits)
                for s in range(num_lanes):
                    reached = changed[
                        (new_bits[changed] >> np.uint64(s)) & np.uint64(1) > 0
                    ]
                    lane_levels[s, reached] = depth
                frontier_mask = new_bits
                # One 64-wide OR propagates all lanes per edge; the update
                # is an atomic RMW on the candidate's frontier word.
                k.bitmask_ops(nbrs.shape[0])
                k.instructions(MASK_INSTR_PER_EDGE * nbrs.shape[0])
                k.atomic("work:frontier_mask", int(nbrs.shape[0]), 8)
                # New frontier + level writes, one word per changed vertex.
                k.write("work:frontier_mask", int(changed.shape[0]), 8)
                k.write("work:mslevels", int(changed.shape[0]), 4)
            sp.annotate(
                edges_expanded=int(nbrs.shape[0]),
                source_edges=level_edges,
                claimed=int(changed.shape[0]),
                **arrays_since(engine, level_start),
            )
    engine.metrics.set_gauge(
        "msbfs.bytes_per_edge", bytes_per_edge(engine, edges_traversed)
    )
    engine.tracer.close(engine.elapsed_seconds)

    return MSBFSResult(
        sources=sources,
        levels=lane_levels[inverse],
        num_levels=int(lane_levels.max()) + 1,
        num_lanes=num_lanes,
        edges_traversed=edges_traversed,
        lists_decoded=backend.lists_decoded - lists_decoded_before,
        sim_seconds=engine.elapsed_seconds - t_start,
        cache_stats=backend.cache.stats if backend.cache is not None else None,
    )
