"""Golden reference implementations for validating the simulator.

Independent code paths (scipy.sparse.csgraph / dense NumPy power
iteration) that never touch the decode kernels, the backends, or the
cost model — so a bug in the traversal stack cannot hide in its own
reference.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.csgraph as csgraph

from repro.formats.graph import Graph

__all__ = [
    "reference_bfs_levels",
    "reference_sssp_distances",
    "reference_pagerank",
]


def _to_scipy(graph: Graph, weights: np.ndarray | None = None) -> sp.csr_matrix:
    """CSR matrix view of the stored arcs."""
    data = (
        np.ones(graph.num_edges, dtype=np.float64)
        if weights is None
        else np.asarray(weights, dtype=np.float64)
    )
    return sp.csr_matrix(
        (data, graph.elist.astype(np.int64), graph.vlist.astype(np.int64)),
        shape=(graph.num_nodes, graph.num_nodes),
    )


def reference_bfs_levels(graph: Graph, source: int) -> np.ndarray:
    """Hop distance from ``source`` (-1 for unreachable vertices)."""
    mat = _to_scipy(graph)
    dist = csgraph.shortest_path(
        mat, method="D", unweighted=True, directed=True, indices=source
    )
    levels = np.where(np.isinf(dist), -1, dist).astype(np.int64)
    return levels


def reference_sssp_distances(
    graph: Graph, source: int, weights: np.ndarray
) -> np.ndarray:
    """Dijkstra distances from ``source`` (inf for unreachable)."""
    mat = _to_scipy(graph, weights)
    return csgraph.dijkstra(mat, directed=True, indices=source)


def reference_pagerank(
    graph: Graph,
    damping: float = 0.85,
    max_iterations: int = 200,
    tolerance: float = 1e-10,
) -> np.ndarray:
    """Power-iteration PageRank with dangling-mass redistribution."""
    nv = graph.num_nodes
    deg = graph.degrees.astype(np.float64)
    dangling = deg == 0
    mat = _to_scipy(graph)
    ranks = np.full(nv, 1.0 / nv)
    inv_deg = np.where(dangling, 0.0, 1.0 / np.maximum(deg, 1.0))
    for _ in range(max_iterations):
        contrib = ranks * inv_deg
        pushed = mat.T @ contrib
        dangling_mass = ranks[dangling].sum() / nv
        new_ranks = (1 - damping) / nv + damping * (pushed + dangling_mass)
        if np.abs(new_ranks - ranks).sum() < tolerance:
            return new_ranks
        ranks = new_ranks
    return ranks
