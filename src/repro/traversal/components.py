"""Connected components via frontier expansion (Sec. I / III-B).

The paper notes that "other analytics such as betweenness centrality
and connected components can also be implemented using a similar
approach".  This is the BFS-style implementation: repeated traversals
claim components (for undirected / symmetrised graphs), with the same
per-format decode costs charged through the backend.

For directed graphs the result is *weakly* connected components and
the caller must pass the symmetrised graph's backend (the standard
formulation; validated against scipy's implementation in tests).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.primitives.compact import atomic_or_claim
from repro.traversal.backends import GraphBackend

__all__ = ["ComponentsResult", "connected_components", "connected_components_lp"]


@dataclass(frozen=True)
class ComponentsResult:
    """Outcome of a connected-components run."""

    labels: np.ndarray
    num_components: int
    edges_traversed: int
    sim_seconds: float

    @property
    def runtime_ms(self) -> float:
        """Simulated runtime in milliseconds."""
        return self.sim_seconds * 1e3

    def component_sizes(self) -> np.ndarray:
        """Vertex count per component label."""
        return np.bincount(self.labels, minlength=self.num_components)


def connected_components_lp(
    backend: GraphBackend, max_iterations: int | None = None
) -> ComponentsResult:
    """Label-propagation connected components (the GPU-native variant).

    GPU frameworks (Gunrock, cuGraph) favour label propagation /
    Shiloach-Vishkin over repeated BFS: every vertex repeatedly adopts
    the minimum label among itself and its neighbours until a fixpoint.
    Each iteration is one full-graph expansion (all vertices active,
    like PageRank), so compressed formats pay their decode cost every
    round — which is exactly why the comparison with the BFS-based
    variant below is interesting on EFG.

    Labels are normalised to dense 0..k-1 ids on completion.
    """
    nv = backend.num_nodes
    engine = backend.engine
    engine.reset_timeline()
    all_vertices = np.arange(nv, dtype=np.int64)
    labels = all_vertices.copy()
    edges_traversed = 0
    cap = max_iterations if max_iterations is not None else nv
    cached: tuple[np.ndarray, np.ndarray] | None = None

    for _ in range(cap):
        with engine.launch("cc_lp_iter") as k:
            if cached is None:
                nbrs, seg = backend.expand(all_vertices, k)
                cached = (nbrs, seg)
            else:
                nbrs, seg = cached
                backend.charge_expand(all_vertices, nbrs, k)
            k.read_stream("work:labels", nbrs, 4)
            k.instructions(4.0 * nbrs.shape[0])
        edges_traversed += int(nbrs.shape[0])
        best = labels.copy()
        np.minimum.at(best, seg, labels[nbrs])  # pull min over neighbours
        np.minimum.at(best, nbrs, labels[seg])  # and push (symmetric hook)
        with engine.launch("cc_lp_jump") as k:
            # Pointer jumping: compress label chains.
            for _ in range(2):
                best = best[best]
            k.atomic("work:labels", nv, 4)
        if np.array_equal(best, labels):
            break
        labels = best

    # Normalise to dense component ids.
    unique, dense = np.unique(labels, return_inverse=True)
    return ComponentsResult(
        labels=dense.astype(np.int64),
        num_components=int(unique.shape[0]),
        edges_traversed=edges_traversed,
        sim_seconds=engine.elapsed_seconds,
    )


def connected_components(backend: GraphBackend) -> ComponentsResult:
    """Label connected components by repeated frontier expansion.

    Each unvisited seed starts a BFS that claims its whole component;
    isolated vertices become singleton components.  All expansions are
    charged on the backend's engine like any other traversal.
    """
    nv = backend.num_nodes
    engine = backend.engine
    engine.reset_timeline()

    labels = np.full(nv, -1, dtype=np.int64)
    visited = np.zeros(nv, dtype=bool)
    edges_traversed = 0
    component = 0

    order = np.argsort(-backend.degrees, kind="stable")  # big seeds first
    for seed in order:
        if visited[seed]:
            continue
        visited[seed] = True
        labels[seed] = component
        frontier = np.array([seed], dtype=np.int64)
        while frontier.size:
            with engine.launch("cc_expand") as k:
                nbrs, _ = backend.expand(frontier, k)
                k.read_stream("work:visited", nbrs, 1)
            edges_traversed += int(nbrs.shape[0])
            with engine.launch("cc_filter") as k:
                fresh = nbrs[~visited[nbrs]]
                won = atomic_or_claim(visited, fresh)
                frontier = fresh[won]
                k.instructions(2.0 * fresh.shape[0])
                k.write("work:frontier", int(frontier.shape[0]), 4)
            labels[frontier] = component
        component += 1

    return ComponentsResult(
        labels=labels,
        num_components=component,
        edges_traversed=edges_traversed,
        sim_seconds=engine.elapsed_seconds,
    )
