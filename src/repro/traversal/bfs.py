"""Level-synchronous BFS on any backend (Alg. 1, Sec. VI).

Each level: (optionally) partially sort the frontier (Sec. VI-E),
expand it via the backend's decode kernel, claim unvisited neighbours
with atomics, and compact the winners into the next frontier.  The
simulated time accumulates per kernel; GTEPS = traversed edges over
simulated seconds (the paper's Fig. 1 metric).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.frontier import Frontier
from repro.obs.counters import arrays_since
from repro.obs.metrics import bytes_per_edge
from repro.primitives.compact import atomic_or_claim
from repro.traversal.backends import GraphBackend

__all__ = ["BFSResult", "bfs"]


@dataclass(frozen=True)
class BFSResult:
    """Outcome of one BFS run.

    ``parents`` is the BFS tree (Graph500-style): ``parents[source] ==
    source``, unreached vertices hold -1, and every other entry names
    the frontier vertex whose expansion claimed it.
    """

    source: int
    levels: np.ndarray
    parents: np.ndarray
    #: Number of BFS levels, counting the source's level 0 — i.e.
    #: ``levels.max() + 1``, which equals the number of expansion rounds
    #: that claimed at least one vertex plus one.  (The loop's ``depth``
    #: counter also counts the final round that claims nothing, so on
    #: natural termination ``num_levels == depth``.)
    num_levels: int
    edges_traversed: int
    sim_seconds: float

    @property
    def gteps(self) -> float:
        """Billions of traversed edges per simulated second."""
        if self.sim_seconds <= 0:
            return 0.0
        return self.edges_traversed / self.sim_seconds / 1e9

    @property
    def runtime_ms(self) -> float:
        """Simulated runtime in milliseconds (Table II units)."""
        return self.sim_seconds * 1e3


def bfs(
    backend: GraphBackend,
    source: int,
    partial_sort: bool = True,
    sort_fraction: float = 0.65,
    max_levels: int | None = None,
) -> BFSResult:
    """Breadth-first search from ``source``.

    Parameters
    ----------
    backend:
        Graph representation bound to a simulated device.
    source:
        Start vertex.
    partial_sort:
        Apply the Sec. VI-E partial radix sort to each frontier.
    sort_fraction:
        Fraction of high id bits the partial sort keys on (paper: 0.65).
    max_levels:
        Optional safety cap (default: |V|).
    """
    nv = backend.num_nodes
    if not 0 <= source < nv:
        raise IndexError(f"source {source} out of range")
    engine = backend.engine
    engine.reset_timeline()

    levels = np.full(nv, -1, dtype=np.int64)
    parents = np.full(nv, -1, dtype=np.int64)
    visited = np.zeros(nv, dtype=bool)
    levels[source] = 0
    parents[source] = source
    visited[source] = True
    frontier = Frontier(np.array([source], dtype=np.int64), nv)

    depth = 0
    edges_traversed = 0
    cap = max_levels if max_levels is not None else nv
    engine.tracer.open(
        "bfs", "algorithm", engine.elapsed_seconds,
        {"source": int(source), "partial_sort": partial_sort},
    )
    while not frontier.is_empty and depth < cap:
        engine.metrics.observe("bfs.frontier_size", len(frontier))
        engine.sample("frontier_size", len(frontier))
        level_start = engine.num_launches
        with engine.span(
            f"level:{depth}", "level", level=depth, frontier_size=len(frontier)
        ) as sp:
            if partial_sort and len(frontier) > 1:
                with engine.launch("frontier_sort") as k:
                    frontier = frontier.partially_sorted(sort_fraction)
                    # CUB radix sort: ~4 passes over the kept digit range;
                    # each pass reads + scatters the keys.
                    kept_bits = max(
                        1, int(round(np.log2(max(nv, 2)) * sort_fraction))
                    )
                    passes = -(-kept_bits // 8)
                    k.read("work:frontier", 2 * passes * len(frontier), 4)
                    k.instructions(8.0 * passes * len(frontier))

            with engine.launch("bfs_expand") as k:
                nbrs, seg = backend.expand(frontier.vertices, k)
                # Visited-flag probe per candidate edge (Alg. 1 line 3);
                # locality measured from the real neighbour id stream.
                k.read_stream("work:visited", nbrs, 1)
            edges_traversed += int(nbrs.shape[0])

            with engine.launch("bfs_filter") as k:
                unvisited = ~visited[nbrs]
                candidates = nbrs[unvisited]
                cand_parents = frontier.vertices[seg[unvisited]]
                won = atomic_or_claim(visited, candidates)
                next_vertices = candidates[won]
                parents[next_vertices] = cand_parents[won]
                # Atomic claim per not-yet-visited candidate (line 4) and a
                # compacted frontier write (line 6).
                k.read_stream("work:visited", candidates, 1)
                k.instructions(2.0 * candidates.shape[0])
                k.write("work:frontier", int(next_vertices.shape[0]), 4)

            depth += 1
            levels[next_vertices] = depth
            frontier = Frontier(next_vertices, nv)
            sp.annotate(
                edges_expanded=int(nbrs.shape[0]),
                claimed=int(next_vertices.shape[0]),
                **arrays_since(engine, level_start),
            )
    engine.metrics.set_gauge(
        "bfs.bytes_per_edge", bytes_per_edge(engine, edges_traversed)
    )
    engine.tracer.close(engine.elapsed_seconds)

    return BFSResult(
        source=source,
        levels=levels,
        parents=parents,
        num_levels=int(levels.max()) + 1,
        edges_traversed=edges_traversed,
        sim_seconds=engine.elapsed_seconds,
    )
