"""Push-style PageRank (Sec. VI-F, Fig. 11).

Every vertex is active each iteration (the frontier is all of V), so
each iteration decodes the whole graph and atomically accumulates
``rank[src] / deg[src]`` into each destination.  Runs are capped at 50
iterations like the paper's evaluation.

The full-graph expansion is identical every iteration, so backends'
functional decode output is cached after the first iteration while the
*costs* are re-charged each iteration (the simulated device re-decodes
every time; the simulator just avoids redundant Python work — the
charged traffic is byte-identical because it is recomputed from the
same arrays).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs.counters import arrays_since
from repro.obs.metrics import bytes_per_edge
from repro.traversal.backends import GraphBackend

__all__ = ["PageRankResult", "pagerank"]


@dataclass(frozen=True)
class PageRankResult:
    """Outcome of one PageRank run."""

    ranks: np.ndarray
    iterations: int
    edges_processed: int
    sim_seconds: float
    converged: bool

    @property
    def gteps(self) -> float:
        """Billions of edges processed per simulated second."""
        if self.sim_seconds <= 0:
            return 0.0
        return self.edges_processed / self.sim_seconds / 1e9

    @property
    def runtime_ms(self) -> float:
        """Simulated runtime in milliseconds."""
        return self.sim_seconds * 1e3


def pagerank(
    backend: GraphBackend,
    damping: float = 0.85,
    max_iterations: int = 50,
    tolerance: float = 1e-6,
) -> PageRankResult:
    """PageRank with uniform teleport and dangling-mass redistribution."""
    if not 0 < damping < 1:
        raise ValueError(f"damping must be in (0, 1), got {damping}")
    nv = backend.num_nodes
    engine = backend.engine
    engine.reset_timeline()
    # Second rank buffer for ping-pong accumulation.
    engine.memory.register("work:rank2", 4 * nv, priority=-1)

    all_vertices = np.arange(nv, dtype=np.int64)
    degrees = backend.degrees.astype(np.float64)
    out_deg_safe = np.maximum(degrees, 1.0)
    dangling = degrees == 0

    ranks = np.full(nv, 1.0 / nv, dtype=np.float64)
    edges_processed = 0
    converged = False
    cached: tuple[np.ndarray, np.ndarray] | None = None

    engine.tracer.open(
        "pagerank", "algorithm", engine.elapsed_seconds,
        {"damping": damping, "max_iterations": max_iterations},
    )
    it = 0
    for it in range(1, max_iterations + 1):
        level_start = engine.num_launches
        with engine.span(f"iteration:{it}", "level", level=it) as sp:
            with engine.launch("pr_push") as k:
                if cached is None:
                    nbrs, seg = backend.expand(all_vertices, k)
                    cached = (nbrs, seg)
                else:
                    nbrs, seg = cached
                    # Re-charge the identical decode traffic for this
                    # iteration; the functional decode is reused because
                    # the graph is static across iterations.
                    backend.charge_expand(all_vertices, nbrs, k)
                contrib = ranks[seg] / out_deg_safe[seg]
                new_ranks = np.zeros(nv, dtype=np.float64)
                np.add.at(new_ranks, nbrs, contrib)
                # Atomic float add per edge into the destination ranks.
                k.read_stream("work:rank2", nbrs, 4)
                k.instructions(4.0 * nbrs.shape[0])
            edges_processed += int(nbrs.shape[0])

            with engine.launch("pr_finalize") as k:
                dangling_mass = ranks[dangling].sum() / nv
                new_ranks = (
                    (1 - damping) / nv + damping * (new_ranks + dangling_mass)
                )
                delta = float(np.abs(new_ranks - ranks).sum())
                ranks = new_ranks
                k.read("work:labels", nv, 4)
                k.write("work:rank2", nv, 4)
                k.instructions(4.0 * nv)
            sp.annotate(
                edges_expanded=int(nbrs.shape[0]),
                rank_delta=delta,
                **arrays_since(engine, level_start),
            )
            engine.sample("rank_delta", delta)
        if delta < tolerance:
            converged = True
            break
    engine.metrics.set_gauge(
        "pagerank.bytes_per_edge", bytes_per_edge(engine, edges_processed)
    )
    engine.tracer.close(engine.elapsed_seconds)

    return PageRankResult(
        ranks=ranks,
        iterations=it,
        edges_processed=edges_processed,
        sim_seconds=engine.elapsed_seconds,
        converged=converged,
    )
