"""Format backends: functional expansion + honest traffic accounting.

A backend binds one graph representation to a simulated device and
exposes ``expand(frontier, kernel)`` — decode the frontier's neighbour
lists, charging the kernel for the traffic and instructions that
representation really generates:

* **CSR** — constant-time edge gather; traffic is the raw ``elist``
  slices plus per-vertex ``vlist`` lookups.
* **EFG** — runs the real batched decode kernel
  (:func:`repro.core.efg.decode_lists`); traffic is the *compressed*
  payload bytes (forward pointers + lower + upper sections) and the
  decode costs ~70 extra instructions per edge (binary search, LUT
  probe, scan bookkeeping — Sec. VI-B).
* **CGR** — interval/residual varint decode is a per-list dependent
  chain: one lane parses while its warp waits, charged via
  ``serial_work`` at the measured compressed chain length.  Functional
  neighbours come from the embedded reference adjacency (the byte
  decoder itself is validated in unit tests); the *cost* path uses the
  real compressed sizes.
* **Ligra+** — same chain model on the CPU device (one list per
  thread, lane width 1), reflecting its shared-memory parallelism.

All per-array traffic uses :meth:`KernelLaunch.read_stream`, so
coalescing is measured from the actual ids touched — this is what makes
reordering (Sec. VIII-D) and partial frontier sorting (Sec. VI-E)
matter in the model.

A :class:`~repro.core.listcache.DecodedListCache` can be attached to
any backend (:meth:`GraphBackend.attach_cache`): frontier lists found
in the cache skip the functional decode *and* its cost — the expansion
is charged as on-chip cached reads of the decoded ids instead of
compressed payload traffic plus decode instructions (EFG) or serial
varint chains (CGR).  Hit/miss/eviction and bytes-saved counters are
pushed to the engine so they appear in profile reports.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.core.efg import EFGraph, csr_gather_indices, decode_lists
from repro.core.listcache import DECODED_ELEM_BYTES, DecodedListCache
from repro.formats.cgr import CGRGraph
from repro.formats.csr import CSRGraph
from repro.formats.graph import Graph
from repro.formats.ligra_plus import LigraPlusGraph
from repro.gpusim.cost import CostParams
from repro.gpusim.device import CPU_E5_2696V4_X2, DeviceSpec
from repro.gpusim.engine import SimEngine
from repro.gpusim.kernel import KernelLaunch
from repro.primitives.scan import exclusive_scan

__all__ = [
    "GraphBackend",
    "CSRBackend",
    "EFGBackend",
    "CGRBackend",
    "LigraBackend",
]

#: Per-edge bookkeeping instructions shared by every format (frontier
#: math, bounds checks, enqueue).
BASE_INSTR_PER_EDGE = 12.0

#: Extra per-edge decode instructions for EFG (Sec. VI-B pipeline:
#: ~8-step binary search, select LUT probe, segmented-scan bookkeeping,
#: shift/or combine).
EFG_DECODE_INSTR_PER_EDGE = 68.0

#: Amortised single-lane cycles per varint in a CGR decode chain
#: (shift/accumulate, continuation branch, running-prefix update).
CGR_CYCLES_PER_STEP = 5.0

#: Issue-to-use latency of one dependent varint parse — the critical
#: path cost per chain element when a single lane walks a hub list.
CGR_DEP_LATENCY_CYCLES = 8.0

#: Ligra+ CPU decode cycles per compressed byte (scalar loop).
LIGRA_CYCLES_PER_BYTE = 6.0


class GraphBackend(abc.ABC):
    """One graph representation bound to a simulated device."""

    engine: SimEngine
    format_name: str

    #: Optional decoded-adjacency cache (see :meth:`attach_cache`).
    cache: DecodedListCache | None = None

    #: Functional list decodes performed so far (a cache hit serves the
    #: list without decoding, so with a cache this counts misses only).
    lists_decoded: int = 0

    # -- construction helpers -------------------------------------------

    def _finish_setup(self, weight_bytes: int = 0) -> None:
        """Register working arrays common to the analytics."""
        nv = self.num_nodes
        mem = self.engine.memory
        # Working data the kernels need resident (priority -1: the
        # planner places it first, mirroring how one allocates outputs
        # before deciding what else fits — Sec. II bullet 1).
        mem.register("work:labels", 4 * nv, priority=-1)
        mem.register("work:visited", nv, priority=-1)
        mem.register("work:frontier", 8 * nv, priority=-1)
        if weight_bytes:
            mem.register("weights", weight_bytes, priority=2)

    # -- interface --------------------------------------------------------

    @property
    @abc.abstractmethod
    def num_nodes(self) -> int:
        """|V|."""

    @property
    @abc.abstractmethod
    def num_edges(self) -> int:
        """|E|."""

    @property
    @abc.abstractmethod
    def degrees(self) -> np.ndarray:
        """Out-degree per vertex."""

    def attach_cache(self, cache: DecodedListCache) -> None:
        """Serve future expansions through a decoded-list cache.

        The cache's byte budget is registered as resident working
        memory (priority -1, like the frontier/visited arrays): the
        residency it models is on-chip, but budgeting it keeps the
        planner honest about what else still fits.
        """
        self.cache = cache
        self.engine.memory.register(
            "work:listcache", cache.budget_bytes, priority=-1
        )

    def expand(
        self, frontier: np.ndarray, kernel: KernelLaunch
    ) -> tuple[np.ndarray, np.ndarray]:
        """Decode the frontier's lists; return (neighbours, frontier_pos).

        ``neighbours`` is the concatenation of the frontier vertices'
        lists in frontier order; ``frontier_pos[i]`` is the index into
        ``frontier`` of the vertex that produced ``neighbours[i]``.
        Charges the traffic/instructions of this representation on
        ``kernel``.  With a cache attached, hit lists are streamed from
        on-chip memory and only the misses pay the real decode.
        """
        frontier = np.asarray(frontier, dtype=np.int64)
        if self.cache is None:
            nbrs, seg = self._decode(frontier)
            self.lists_decoded += int(frontier.shape[0])
            self.charge_expand(frontier, nbrs, kernel)
            return nbrs, seg
        return self._expand_with_cache(frontier, kernel)

    def _expand_with_cache(
        self, frontier: np.ndarray, kernel: KernelLaunch
    ) -> tuple[np.ndarray, np.ndarray]:
        """Cache-aware expansion: decode misses, stream hits, merge."""
        cache = self.cache
        evictions_before = cache.stats.evictions
        if cache.record_reuse:
            # The launch in flight becomes engine.records[len(records)]
            # when it closes — tagging the batch with that index lets
            # the what-if engine re-price exactly this kernel.
            cache.begin_batch(len(self.engine.records))
        hit_mask = cache.probe(frontier)
        hit_pos = np.flatnonzero(hit_mask)
        miss_pos = np.flatnonzero(~hit_mask)
        miss_vertices = frontier[miss_pos]

        # Fetch the hit data *before* installing misses: under a tight
        # budget the insertions below may evict the very entries probe()
        # just reported resident (on a GPU the hit reads likewise happen
        # before the replacement writes land).
        hit_vertices = frontier[hit_pos]
        hit_lists = cache.get_many(hit_vertices) if hit_pos.size else []

        miss_nbrs = np.empty(0, dtype=np.int64)
        if miss_vertices.size:
            miss_nbrs, _ = self._decode(miss_vertices)
            self.lists_decoded += int(miss_vertices.shape[0])
            cache.stats.miss_edges += int(miss_nbrs.shape[0])
            # Install the freshly decoded lists (split back per vertex).
            bounds = np.cumsum(self.degrees[miss_vertices])[:-1]
            cache.put_many(miss_vertices, np.split(miss_nbrs, bounds))
            self.charge_expand(miss_vertices, miss_nbrs, kernel)

        # Merge hits and misses back into frontier order.
        deg = self.degrees[frontier]
        ex_deg, total = exclusive_scan(deg)
        nbrs = np.empty(int(total), dtype=np.int64)
        seg = np.repeat(np.arange(frontier.shape[0], dtype=np.int64), deg)
        if miss_pos.size:
            target, _ = csr_gather_indices(ex_deg[miss_pos], deg[miss_pos])
            nbrs[target] = miss_nbrs
        if hit_pos.size:
            target, _ = csr_gather_indices(ex_deg[hit_pos], deg[hit_pos])
            nbrs[target] = np.concatenate(hit_lists)
            self.charge_cached_expand(
                hit_vertices, int(deg[hit_pos].sum()), kernel
            )

        engine = self.engine
        engine.metrics.inc("listcache:hits", int(hit_pos.size))
        engine.metrics.inc("listcache:misses", int(miss_pos.size))
        engine.metrics.inc(
            "listcache:evictions", cache.stats.evictions - evictions_before
        )
        # Running hit rate as a time series — becomes a Perfetto counter
        # track, showing the cache warming up over the traversal.
        engine.sample("listcache:hit_rate", cache.stats.hit_rate)
        return nbrs, seg

    def charge_cached_expand(
        self, vertices: np.ndarray, num_edges: int, kernel: KernelLaunch
    ) -> None:
        """Charge an expansion served entirely from the decoded cache.

        The decoded ids stream out of on-chip memory (4 B per edge at
        cache bandwidth); the frontier bookkeeping instructions remain,
        but the payload traffic, per-vertex metadata reads and the
        format's decode instructions are all skipped — those savings
        are credited to the cache stats and the engine counters.
        """
        kernel.cached_read(
            f"{self.format_name}_decoded", num_edges, DECODED_ELEM_BYTES
        )
        kernel.instructions(BASE_INSTR_PER_EDGE * num_edges)
        _, payload_bytes, _, meta_elem = self._payload_info(vertices)
        saved_bytes = float(payload_bytes.sum()) + float(
            meta_elem * vertices.shape[0]
        )
        saved_instr = self._decode_instr_per_edge() * num_edges
        stats = self.cache.stats
        stats.hit_edges += num_edges
        stats.bytes_saved += saved_bytes
        stats.instr_saved += saved_instr
        self.engine.metrics.inc("listcache:bytes_saved", saved_bytes)

    @abc.abstractmethod
    def _decode(self, frontier: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Functional neighbour-list decode (no cost accounting)."""

    @abc.abstractmethod
    def charge_expand(
        self, frontier: np.ndarray, nbrs: np.ndarray, kernel: KernelLaunch
    ) -> None:
        """Charge the traffic/instructions this format's expansion of
        ``frontier`` generates.  ``nbrs`` is the decoded neighbour
        stream (used only to measure candidate-stream locality and
        counts, never to shortcut the traffic computation).
        """

    def charge_scan_prefix(
        self, vertices: np.ndarray, scanned: np.ndarray, kernel: KernelLaunch
    ) -> None:
        """Charge an early-exiting prefix scan of each vertex's list.

        Bottom-up BFS (direction optimisation) reads only the leading
        ``scanned[i]`` elements of vertex ``i``'s list before exiting.
        Metadata is still touched per vertex; payload bytes are charged
        pro rata to the scanned fraction (prefix reads are sequential,
        so coalescing is ideal).
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        scanned = np.asarray(scanned, dtype=np.int64)
        payload_name, payload_bytes, meta_name, meta_elem = self._payload_info(
            vertices
        )
        kernel.read_stream(meta_name, vertices, meta_elem)
        deg = np.maximum(self.degrees[vertices], 1)
        prefix_bytes = payload_bytes * scanned / deg
        kernel.read(payload_name, int(np.ceil(prefix_bytes.sum())), 1)
        kernel.instructions(
            (BASE_INSTR_PER_EDGE + self._decode_instr_per_edge())
            * float(scanned.sum())
        )
        # Divergence from the *scanned* distribution: a lane that exits
        # after one probe idles while its warp's deepest scan finishes.
        kernel.warp_occupancy(scanned)

    def _decode_instr_per_edge(self) -> float:
        """Extra decode instructions per edge for this format."""
        return 0.0

    @abc.abstractmethod
    def _payload_info(
        self, vertices: np.ndarray
    ) -> tuple[str, np.ndarray, str, int]:
        """(payload array, per-list payload bytes, metadata array,
        metadata bytes per vertex) for ``vertices``."""

    def edge_slots(self, frontier: np.ndarray) -> np.ndarray:
        """Flat weight-array slots for the frontier's edges.

        Slot numbering is CSR edge order (``vlist[v] + n``), shared by
        every backend (Sec. VI-F: weights are not compressed).
        """
        frontier = np.asarray(frontier, dtype=np.int64)
        slots, _ = csr_gather_indices(
            self._vlist()[frontier], self.degrees[frontier]
        )
        return slots

    @abc.abstractmethod
    def _vlist(self) -> np.ndarray:
        """Row-offset array used for edge-slot numbering."""

    def graph_fits_in_memory(self) -> bool:
        """True when every registered array is device resident."""
        return self.engine.memory.all_resident()


@dataclass(init=False)
class CSRBackend(GraphBackend):
    """Uncompressed CSR on the GPU (cugraph-equivalent, Sec. III-D)."""

    csr: CSRGraph

    def __init__(
        self,
        csr: CSRGraph,
        device: DeviceSpec,
        weight_bytes: int = 0,
        params: CostParams | None = None,
    ) -> None:
        self.csr = csr
        self.format_name = "csr"
        self.engine = SimEngine.for_device(device, params=params)
        nv = csr.num_nodes
        self.engine.memory.register("vlist", 4 * (nv + 1), priority=0)
        self.engine.memory.register("elist", 4 * csr.num_edges, priority=1)
        self._finish_setup(weight_bytes)

    @property
    def num_nodes(self) -> int:
        return self.csr.num_nodes

    @property
    def num_edges(self) -> int:
        return self.csr.num_edges

    @property
    def degrees(self) -> np.ndarray:
        return self.csr.graph.degrees

    def _vlist(self) -> np.ndarray:
        return self.csr.graph.vlist

    def _decode(self, frontier: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        edge_idx, seg = csr_gather_indices(
            self.csr.graph.vlist[frontier], self.degrees[frontier]
        )
        return self.csr.graph.elist[edge_idx], seg

    def _payload_info(self, vertices):
        return "elist", 4 * self.degrees[vertices], "vlist", 8

    def charge_expand(
        self, frontier: np.ndarray, nbrs: np.ndarray, kernel: KernelLaunch
    ) -> None:
        edge_idx, _ = csr_gather_indices(
            self.csr.graph.vlist[frontier], self.degrees[frontier]
        )
        # Traffic: vlist pair per frontier vertex + the elist slices.
        kernel.read_stream("vlist", frontier, 8)
        kernel.read_stream("elist", edge_idx, 4)
        kernel.instructions(BASE_INSTR_PER_EDGE * nbrs.shape[0])
        kernel.warp_occupancy(self.degrees[frontier])


@dataclass(init=False)
class EFGBackend(GraphBackend):
    """The paper's EFG format with run-time decompression (Secs. V-VI)."""

    efg: EFGraph

    def __init__(
        self,
        efg: EFGraph,
        device: DeviceSpec,
        weight_bytes: int = 0,
        params: CostParams | None = None,
    ) -> None:
        self.efg = efg
        self.format_name = "efg"
        self.engine = SimEngine.for_device(device, params=params)
        nv = efg.num_nodes
        # vlist (4B) + num_lower_bits (1B) + offsets (4B) per vertex.
        self.engine.memory.register("efg_meta", 9 * (nv + 1), priority=0)
        self.engine.memory.register("efg_data", int(efg.data.shape[0]), priority=1)
        self._finish_setup(weight_bytes)

    @property
    def num_nodes(self) -> int:
        return self.efg.num_nodes

    @property
    def num_edges(self) -> int:
        return self.efg.num_edges

    @property
    def degrees(self) -> np.ndarray:
        return self.efg.degrees

    def _vlist(self) -> np.ndarray:
        return self.efg.vlist

    def _decode(self, frontier: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return decode_lists(self.efg, frontier)

    def _payload_info(self, vertices):
        per_list = self.efg.offsets[vertices + 1] - self.efg.offsets[vertices]
        return "efg_data", per_list, "efg_meta", 9

    def _decode_instr_per_edge(self) -> float:
        return EFG_DECODE_INSTR_PER_EDGE

    def charge_expand(
        self, frontier: np.ndarray, nbrs: np.ndarray, kernel: KernelLaunch
    ) -> None:
        # Traffic: per-vertex metadata + the full compressed payloads
        # (forward pointers, lower and upper sections are all touched).
        kernel.read_stream("efg_meta", frontier, 9)
        payload_idx, _ = csr_gather_indices(
            self.efg.offsets[frontier],
            self.efg.offsets[frontier + 1] - self.efg.offsets[frontier],
        )
        kernel.read_stream("efg_data", payload_idx, 1)
        kernel.instructions(
            (BASE_INSTR_PER_EDGE + EFG_DECODE_INSTR_PER_EDGE) * nbrs.shape[0]
        )
        # Lane-per-list decode: warp runtime is the longest list in the
        # warp, so skewed degrees in one warp show up as divergence.
        kernel.warp_occupancy(self.degrees[frontier])


@dataclass(init=False)
class CGRBackend(GraphBackend):
    """CGR comparator: sequential per-list varint chains on the GPU."""

    cgr: CGRGraph

    def __init__(
        self,
        cgr: CGRGraph,
        device: DeviceSpec,
        weight_bytes: int = 0,
        params: CostParams | None = None,
    ) -> None:
        self.cgr = cgr
        self.format_name = "cgr"
        self.engine = SimEngine.for_device(device, params=params)
        nv = cgr.num_nodes
        self.engine.memory.register("cgr_offsets", 4 * (nv + 1), priority=0)
        self.engine.memory.register("cgr_data", int(cgr.data.shape[0]), priority=1)
        self._finish_setup(weight_bytes)
        # CGR has no out-of-core path (Sec. VIII-B: DNR beyond memory).
        self.supports_out_of_core = False

    @property
    def num_nodes(self) -> int:
        return self.cgr.num_nodes

    @property
    def num_edges(self) -> int:
        return self.cgr.num_edges

    @property
    def degrees(self) -> np.ndarray:
        return self.cgr.graph.degrees

    def _vlist(self) -> np.ndarray:
        return self.cgr.graph.vlist

    def _decode(self, frontier: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        graph = self.cgr.graph
        edge_idx, seg = csr_gather_indices(
            graph.vlist[frontier], self.degrees[frontier]
        )
        return graph.elist[edge_idx], seg

    def _payload_info(self, vertices):
        return "cgr_data", self.cgr.list_nbytes(vertices), "cgr_offsets", 8

    def charge_expand(
        self, frontier: np.ndarray, nbrs: np.ndarray, kernel: KernelLaunch
    ) -> None:
        list_bytes = self.cgr.list_nbytes(frontier)
        kernel.read_stream("cgr_offsets", frontier, 8)
        payload_idx, _ = csr_gather_indices(self.cgr.offsets[frontier], list_bytes)
        kernel.read_stream("cgr_data", payload_idx, 1)
        # Dependent varint chains: one lane per list parses serially,
        # at the measured chain length (varints per list).
        steps = self.cgr.steps[frontier]
        kernel.serial_work(CGR_CYCLES_PER_STEP * float(steps.sum()))
        # A list cannot be split across blocks in CGR, so the longest
        # chain in the launch is a hard critical path (hub lists!).
        if steps.size:
            kernel.serial_floor(CGR_DEP_LATENCY_CYCLES * float(steps.max()))
        kernel.instructions(BASE_INSTR_PER_EDGE * nbrs.shape[0])
        # One lane walks each chain; divergence follows chain lengths.
        kernel.warp_occupancy(steps)


@dataclass(init=False)
class LigraBackend(GraphBackend):
    """Ligra+(TD) comparator on the CPU host (Sec. VII)."""

    ligra: LigraPlusGraph

    def __init__(
        self,
        ligra: LigraPlusGraph,
        device: DeviceSpec = CPU_E5_2696V4_X2,
        weight_bytes: int = 0,
        params: CostParams | None = None,
    ) -> None:
        self.ligra = ligra
        self.format_name = "ligra+"
        # CPU: no SIMT divergence penalty, lane width 1 for serial code.
        cpu_params = params or CostParams(simt_efficiency=0.5, warp_width=1)
        self.engine = SimEngine.for_device(device, params=cpu_params)
        nv = ligra.num_nodes
        self.engine.memory.register("lg_vertices", 8 * nv, priority=0)
        self.engine.memory.register("lg_data", int(ligra.data.shape[0]), priority=1)
        self._finish_setup(weight_bytes)

    @property
    def num_nodes(self) -> int:
        return self.ligra.num_nodes

    @property
    def num_edges(self) -> int:
        return self.ligra.num_edges

    @property
    def degrees(self) -> np.ndarray:
        return self.ligra.graph.degrees

    def _vlist(self) -> np.ndarray:
        return self.ligra.graph.vlist

    def _decode(self, frontier: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        graph = self.ligra.graph
        edge_idx, seg = csr_gather_indices(
            graph.vlist[frontier], self.degrees[frontier]
        )
        return graph.elist[edge_idx], seg

    def _payload_info(self, vertices):
        return "lg_data", self.ligra.list_nbytes(vertices), "lg_vertices", 8

    def charge_expand(
        self, frontier: np.ndarray, nbrs: np.ndarray, kernel: KernelLaunch
    ) -> None:
        list_bytes = self.ligra.list_nbytes(frontier)
        kernel.read_stream("lg_vertices", frontier, 8)
        payload_idx, _ = csr_gather_indices(self.ligra.offsets[frontier], list_bytes)
        kernel.read_stream("lg_data", payload_idx, 1)
        kernel.serial_work(LIGRA_CYCLES_PER_BYTE * float(list_bytes.sum()))
        kernel.instructions(BASE_INSTR_PER_EDGE * nbrs.shape[0])
        # warp_width is 1 on the CPU device, so this records full
        # efficiency — divergence is a SIMT-only effect.
        kernel.warp_occupancy(list_bytes)
