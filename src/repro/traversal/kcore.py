"""K-core decomposition by iterative peeling.

Another member of the frontier-idiom family (Sec. III-B): repeatedly
remove all vertices of degree < k; the k-core number of a vertex is
the largest k for which it survives.  The peeling loop is
frontier-shaped — each round expands the just-removed vertices to
decrement their neighbours — so it runs on the same backends with the
same decode costs as BFS.

Validated against networkx's ``core_number`` in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.traversal.backends import GraphBackend

__all__ = ["KCoreResult", "kcore_decomposition"]


@dataclass(frozen=True)
class KCoreResult:
    """Outcome of a k-core decomposition."""

    core_numbers: np.ndarray
    max_core: int
    peel_rounds: int
    edges_traversed: int
    sim_seconds: float

    @property
    def runtime_ms(self) -> float:
        """Simulated runtime in milliseconds."""
        return self.sim_seconds * 1e3

    def k_core_members(self, k: int) -> np.ndarray:
        """Vertices whose core number is at least ``k``."""
        return np.flatnonzero(self.core_numbers >= k)


def kcore_decomposition(backend: GraphBackend) -> KCoreResult:
    """Core number per vertex of the (undirected) graph behind ``backend``.

    The backend must wrap a symmetrised graph.  Classic peeling: for
    k = 1, 2, ... repeatedly remove vertices whose *remaining* degree is
    below k, charging one expansion per peel round.
    """
    nv = backend.num_nodes
    engine = backend.engine
    engine.reset_timeline()

    remaining_deg = backend.degrees.astype(np.int64).copy()
    core = np.zeros(nv, dtype=np.int64)
    alive = np.ones(nv, dtype=bool)
    edges_traversed = 0
    peel_rounds = 0

    k = 1
    while alive.any():
        # Peel everything below k to a fixpoint before raising k.
        while True:
            frontier = np.flatnonzero(alive & (remaining_deg < k))
            if frontier.size == 0:
                break
            peel_rounds += 1
            core[frontier] = k - 1
            alive[frontier] = False
            with engine.launch("kcore_peel") as k_:
                nbrs, _ = backend.expand(frontier, k_)
                k_.read_stream("work:labels", nbrs, 4)
                k_.instructions(4.0 * nbrs.shape[0])
            edges_traversed += int(nbrs.shape[0])
            live_nbrs = nbrs[alive[nbrs]]
            if live_nbrs.size:
                np.subtract.at(remaining_deg, live_nbrs, 1)
        k += 1

    return KCoreResult(
        core_numbers=core,
        max_core=int(core.max(initial=0)),
        peel_rounds=peel_rounds,
        edges_traversed=edges_traversed,
        sim_seconds=engine.elapsed_seconds,
    )
