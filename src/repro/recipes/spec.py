"""Declarative experiment recipes: spec, validation, expansion.

A *recipe* is the declarative description of one experiment family —
``algo x format x reorder x gpus/nodes x dataset`` axes crossed with a
grid of tunable knobs (EFG quantum, decode-cache budget, wire codec,
exchange schedule, overlap, partial-sort bit fraction).  It is loaded
from a TOML or JSON file (or built programmatically) and expanded into
a **deterministic ordered run list**: same spec, same cells, same
order, every time — the property that makes recipe reports
byte-identical across invocations and lets CI gate them with ``cmp``.

Validation happens entirely at parse time, never mid-run: unknown axis
or knob names, values outside a knob's domain, empty axes, and
incoherent combinations (a distributed cell on a format the sharded
cluster cannot store) all raise :class:`RecipeError` from
:func:`load_recipe` / :meth:`RecipeSpec.expand` before any simulation
starts.

Expansion normalizes each cell before deduplication: knobs that cannot
affect a cell (wire codec on a single-GPU cell, EFG quantum on a CSR
cell, sort fraction on PageRank) are cleared, so grid points that
differ only in irrelevant knobs **collapse into one cell** — first
occurrence wins, deterministically.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

__all__ = [
    "ALGOS",
    "DIST_ALGOS",
    "FORMATS",
    "KNOBS",
    "REORDERS",
    "RecipeCell",
    "RecipeDefaults",
    "RecipeError",
    "RecipeSpec",
    "dataset_id",
    "load_recipe",
    "parse_recipe",
]


class RecipeError(ValueError):
    """A recipe failed validation (bad axis, knob, value, or combo)."""


#: Algorithms a single-GPU cell can run (``repro profile`` set, plus
#: the closed-loop serving workload from :mod:`repro.serve`).
ALGOS = ("bfs", "dobfs", "msbfs", "sssp", "delta", "pagerank", "serve")

#: Algorithms a distributed cell can run (``repro dist`` set).
DIST_ALGOS = ("bfs", "sssp", "pagerank")

#: Single-GPU storage formats; distributed cells use repro.dist's set.
FORMATS = ("csr", "efg", "cgr")

#: Vertex-relabelling orders applied to the graph before encoding.
REORDERS = ("none", "degree", "random")

#: Dataset generators a recipe can reference.
DATASET_KINDS = ("rmat", "web")


def _check_quantum(v) -> int:
    v = _as_int(v, "quantum")
    if v <= 0:
        raise RecipeError(f"knob quantum must be positive, got {v}")
    return v


def _check_cache_kb(v) -> int:
    v = _as_int(v, "cache_kb")
    if v < 0:
        raise RecipeError(f"knob cache_kb must be >= 0, got {v}")
    return v


def _check_wire(v) -> str:
    from repro.dist.wire import WIRE_CODECS

    if v not in WIRE_CODECS:
        raise RecipeError(
            f"knob wire must be one of {tuple(WIRE_CODECS)}, got {v!r}"
        )
    return str(v)


def _check_schedule(v) -> str:
    from repro.dist.exchange import SCHEDULES

    if v not in SCHEDULES:
        raise RecipeError(
            f"knob schedule must be one of {tuple(SCHEDULES)}, got {v!r}"
        )
    return str(v)


def _check_overlap(v) -> bool:
    if not isinstance(v, bool):
        raise RecipeError(f"knob overlap must be a boolean, got {v!r}")
    return v


def _check_sort_fraction(v) -> float:
    if isinstance(v, bool) or not isinstance(v, (int, float)):
        raise RecipeError(f"knob sort_fraction must be a number, got {v!r}")
    v = float(v)
    if not 0.0 < v <= 1.0:
        raise RecipeError(f"knob sort_fraction must be in (0, 1], got {v}")
    return v


def _check_deadline_ms(v) -> str:
    from repro.serve.driver import parse_deadline_mix

    if not isinstance(v, str):
        raise RecipeError(
            f"knob deadline_ms must be a string mix like 'none,0.5', "
            f"got {v!r}"
        )
    try:
        parse_deadline_mix(v)
    except ValueError as exc:
        raise RecipeError(f"knob deadline_ms: {exc}") from None
    return str(v)


def _check_hot_fraction(v) -> float:
    if isinstance(v, bool) or not isinstance(v, (int, float)):
        raise RecipeError(f"knob hot_fraction must be a number, got {v!r}")
    v = float(v)
    if not 0.0 <= v <= 1.0:
        raise RecipeError(f"knob hot_fraction must be in [0, 1], got {v}")
    return v


#: The searchable knob grid: name -> value validator/normalizer.
KNOBS = {
    "quantum": _check_quantum,
    "cache_kb": _check_cache_kb,
    "wire": _check_wire,
    "schedule": _check_schedule,
    "overlap": _check_overlap,
    "sort_fraction": _check_sort_fraction,
    "deadline_ms": _check_deadline_ms,
    "hot_fraction": _check_hot_fraction,
}


def _as_int(v, name: str) -> int:
    if isinstance(v, bool) or not isinstance(v, int):
        raise RecipeError(f"{name} must be an integer, got {v!r}")
    return int(v)


def dataset_id(dataset: dict) -> str:
    """Stable short id of one dataset spec (used in cell names)."""
    kind = dataset["kind"]
    if kind == "rmat":
        return (
            f"rmat-s{dataset['scale']}e{dataset['edge_factor']}"
            f"d{dataset['seed']}"
        )
    return (
        f"web-n{dataset['num_nodes']}e{dataset['edge_factor']}"
        f"d{dataset['seed']}"
    )


def _check_dataset(dataset, index: int) -> dict:
    if not isinstance(dataset, dict):
        raise RecipeError(f"dataset[{index}] must be a table, got {dataset!r}")
    kind = dataset.get("kind", "rmat")
    if kind not in DATASET_KINDS:
        raise RecipeError(
            f"dataset[{index}].kind must be one of {DATASET_KINDS}, "
            f"got {kind!r}"
        )
    out = {"kind": kind, "seed": _as_int(dataset.get("seed", 3), "seed")}
    if kind == "rmat":
        out["scale"] = _as_int(dataset.get("scale", 9), "scale")
        out["edge_factor"] = _as_int(
            dataset.get("edge_factor", 8), "edge_factor"
        )
    else:
        out["num_nodes"] = _as_int(dataset.get("num_nodes", 512), "num_nodes")
        out["edge_factor"] = _as_int(
            dataset.get("edge_factor", 8), "edge_factor"
        )
    extras = set(dataset) - set(out) - {"kind"}
    if extras:
        raise RecipeError(
            f"dataset[{index}] has unknown keys: {sorted(extras)}"
        )
    return out


@dataclass(frozen=True)
class RecipeDefaults:
    """Per-recipe constants shared by every cell (not axes)."""

    device_scale: float = 2048.0
    link_gbs: float = 10.0
    inter_gbs: float = 1.0
    contention: float = 0.5
    #: Seed of the start-vertex draw, stamped into the report meta.
    source_seed: int = 42
    #: Seed of generated edge weights (sssp/delta).
    weight_seed: int = 1
    #: Sources packed into an msbfs wave.
    num_sources: int = 32
    #: Closed-loop queries a serve cell drives.
    serve_queries: int = 200
    #: Queries submitted between waves on serve cells.
    serve_burst: int = 16


@dataclass(frozen=True)
class RecipeCell:
    """One fully-specified run of an expanded recipe.

    ``knobs`` holds only the knobs that can affect this cell — the
    normalization that makes duplicate-collapse well defined.
    """

    algo: str
    fmt: str
    reorder: str
    gpus: int
    nodes: int
    dataset: tuple[tuple[str, object], ...]
    knobs: tuple[tuple[str, object], ...]

    @property
    def is_dist(self) -> bool:
        """True when the cell runs on the sharded cluster."""
        return self.gpus > 1

    @property
    def dataset_dict(self) -> dict:
        return dict(self.dataset)

    @property
    def knobs_dict(self) -> dict:
        return dict(self.knobs)

    @property
    def name(self) -> str:
        """Deterministic, human-readable cell id (report key)."""
        base = (
            f"{self.algo}/{self.fmt}/{self.reorder}/"
            f"{dataset_id(self.dataset_dict)}/n{self.nodes}g{self.gpus}"
        )
        if self.knobs:
            pairs = ",".join(f"{k}={v}" for k, v in self.knobs)
            return f"{base}[{pairs}]"
        return base


#: Axis expansion order — fixed, so the run list order is part of the
#: recipe contract (report keys are sorted, but runs execute in this
#: order and any side effects, e.g. log lines, are reproducible).
_AXIS_ORDER = ("dataset", "algo", "fmt", "reorder", "layout", "knobs")

#: Knobs that only exist on the sharded-cluster path.
_DIST_ONLY_KNOBS = ("wire", "schedule", "overlap")

#: Knobs that only shape the closed-loop serving workload.
_SERVE_ONLY_KNOBS = ("deadline_ms", "hot_fraction")


@dataclass(frozen=True)
class RecipeSpec:
    """A validated recipe: axes + knob grid + defaults.

    Build programmatically or via :func:`load_recipe`.  ``expand()``
    yields the deterministic ordered cell list.
    """

    name: str
    algos: tuple[str, ...] = ("bfs",)
    formats: tuple[str, ...] = ("efg",)
    reorders: tuple[str, ...] = ("none",)
    #: ``(nodes, gpus)`` layouts; ``(1, 1)`` is the single-GPU path.
    layouts: tuple[tuple[int, int], ...] = ((1, 1),)
    datasets: tuple[tuple[tuple[str, object], ...], ...] = (
        (("kind", "rmat"), ("seed", 3), ("scale", 9), ("edge_factor", 8)),
    )
    #: Knob grid: name -> tuple of validated values.
    knobs: tuple[tuple[str, tuple[object, ...]], ...] = ()
    defaults: RecipeDefaults = field(default_factory=RecipeDefaults)

    def expand(self) -> list[RecipeCell]:
        """The deterministic ordered run list (validated, deduplicated).

        Cells are produced in fixed axis order (dataset, algo, format,
        reorder, layout, knob grid) and normalized — knobs that cannot
        affect a cell are dropped — before deduplication, so two grid
        points differing only in an irrelevant knob collapse into the
        first one.  Incoherent combinations raise :class:`RecipeError`
        here, at parse/validation time, never mid-run.
        """
        from repro.dist.cluster import DIST_FORMATS

        for axis, values in (
            ("algo", self.algos),
            ("format", self.formats),
            ("reorder", self.reorders),
            ("layout", self.layouts),
            ("dataset", self.datasets),
        ):
            if not values:
                raise RecipeError(f"axis {axis!r} is empty")
        knob_names = [k for k, _ in self.knobs]
        knob_grids = [vals for _, vals in self.knobs]
        for knob, vals in self.knobs:
            if not vals:
                raise RecipeError(f"knob axis {knob!r} is empty")

        cells: list[RecipeCell] = []
        seen: set = set()
        for dataset in self.datasets:
            for algo in self.algos:
                for fmt in self.formats:
                    for reorder in self.reorders:
                        for nodes, gpus in self.layouts:
                            for combo in _product(knob_grids):
                                knobs = dict(zip(knob_names, combo))
                                cell = _normalize_cell(
                                    algo, fmt, reorder, gpus, nodes,
                                    dataset, knobs, DIST_FORMATS,
                                )
                                if cell not in seen:
                                    seen.add(cell)
                                    cells.append(cell)
        return cells


def _product(grids: list[tuple]) -> list[tuple]:
    """Cartesian product in fixed order (itertools-free: keep it obvious)."""
    combos: list[tuple] = [()]
    for grid in grids:
        combos = [c + (v,) for c in combos for v in grid]
    return combos


def _normalize_cell(
    algo: str,
    fmt: str,
    reorder: str,
    gpus: int,
    nodes: int,
    dataset: tuple,
    knobs: dict,
    dist_formats: tuple[str, ...],
) -> RecipeCell:
    """Validate one combination and clear its irrelevant knobs."""
    is_dist = gpus > 1
    if is_dist:
        if algo not in DIST_ALGOS:
            raise RecipeError(
                f"algorithm {algo!r} has no distributed driver "
                f"(layout n{nodes}g{gpus}); distributed algos: {DIST_ALGOS}"
            )
        if fmt not in dist_formats:
            raise RecipeError(
                f"format {fmt!r} cannot shard (layout n{nodes}g{gpus}); "
                f"distributed formats: {tuple(dist_formats)}"
            )
        if gpus % nodes:
            raise RecipeError(
                f"layout n{nodes}g{gpus}: {gpus} GPUs not divisible "
                f"by {nodes} nodes"
            )
    else:
        for knob in _DIST_ONLY_KNOBS:
            knobs.pop(knob, None)
        # The decoded-list cache only amortizes actual decode work.
        if fmt == "csr":
            knobs.pop("cache_kb", None)
    if algo != "serve":
        # Workload-mix knobs shape the query stream, not the kernel.
        for knob in _SERVE_ONLY_KNOBS:
            knobs.pop(knob, None)
    if fmt != "efg":
        knobs.pop("quantum", None)
    if is_dist:
        # Shards never attach a decode cache (receive-side claims
        # dominate) and dist EFG encoding is per-shard with the
        # default quantum.
        knobs.pop("cache_kb", None)
        knobs.pop("quantum", None)
        if algo not in ("bfs", "sssp"):
            knobs.pop("sort_fraction", None)
    elif algo != "bfs":
        # Only the level-synchronous bfs driver exposes the partial
        # radix-sort fraction on the single-GPU path.
        knobs.pop("sort_fraction", None)
    return RecipeCell(
        algo=algo,
        fmt=fmt,
        reorder=reorder,
        gpus=gpus,
        nodes=nodes,
        dataset=dataset,
        knobs=tuple(sorted(knobs.items())),
    )


# -- file loading ---------------------------------------------------------


def _load_table(path: str) -> dict:
    if path.endswith(".json"):
        with open(path) as fh:
            try:
                return json.load(fh)
            except json.JSONDecodeError as exc:
                raise RecipeError(f"{path}: invalid JSON ({exc})") from exc
    try:
        import tomllib
    except ImportError as exc:  # pragma: no cover - python < 3.11
        raise RecipeError(
            f"{path}: TOML recipes need python >= 3.11 (tomllib); "
            "use a .json recipe instead"
        ) from exc
    with open(path, "rb") as fh:
        try:
            return tomllib.load(fh)
        except tomllib.TOMLDecodeError as exc:
            raise RecipeError(f"{path}: invalid TOML ({exc})") from exc


def _as_str_list(raw, axis: str, allowed: tuple[str, ...]) -> tuple[str, ...]:
    if not isinstance(raw, list):
        raise RecipeError(f"axis {axis!r} must be a list, got {raw!r}")
    if not raw:
        raise RecipeError(f"axis {axis!r} is empty")
    out = []
    for v in raw:
        if v not in allowed:
            raise RecipeError(
                f"axis {axis!r}: {v!r} not in {tuple(allowed)}"
            )
        out.append(str(v))
    return tuple(out)


def parse_recipe(table: dict, name: str | None = None) -> RecipeSpec:
    """Validate a raw recipe table (parsed TOML/JSON) into a spec.

    Every error any run could later hit from a malformed spec is
    raised here; a returned spec always expands cleanly.
    """
    if not isinstance(table, dict):
        raise RecipeError(f"recipe must be a table, got {table!r}")
    known = {"name", "axes", "knobs", "defaults", "dataset"}
    extras = set(table) - known
    if extras:
        raise RecipeError(f"unknown recipe sections: {sorted(extras)}")
    rname = table.get("name", name or "recipe")
    if not isinstance(rname, str) or not rname:
        raise RecipeError(f"recipe name must be a string, got {rname!r}")

    axes = table.get("axes", {})
    if not isinstance(axes, dict):
        raise RecipeError(f"[axes] must be a table, got {axes!r}")
    extras = set(axes) - {"algo", "format", "reorder", "gpus", "nodes"}
    if extras:
        raise RecipeError(f"unknown axes: {sorted(extras)}")
    algos = _as_str_list(axes.get("algo", ["bfs"]), "algo", ALGOS)
    formats = _as_str_list(axes.get("format", ["efg"]), "format", FORMATS)
    reorders = _as_str_list(
        axes.get("reorder", ["none"]), "reorder", REORDERS
    )
    gpus_axis = axes.get("gpus", [1])
    nodes_axis = axes.get("nodes", [1])
    for axis, raw in (("gpus", gpus_axis), ("nodes", nodes_axis)):
        if not isinstance(raw, list):
            raise RecipeError(f"axis {axis!r} must be a list, got {raw!r}")
        if not raw:
            raise RecipeError(f"axis {axis!r} is empty")
        for v in raw:
            if _as_int(v, axis) < 1:
                raise RecipeError(f"axis {axis!r}: {v} must be >= 1")
    layouts = tuple(
        (int(n), int(g)) for n in nodes_axis for g in gpus_axis
    )

    raw_datasets = table.get("dataset", [{}])
    if isinstance(raw_datasets, dict):
        raw_datasets = [raw_datasets]
    if not isinstance(raw_datasets, list):
        raise RecipeError(f"dataset must be a table array, got {raw_datasets!r}")
    if not raw_datasets:
        raise RecipeError("axis 'dataset' is empty")
    datasets = tuple(
        tuple(sorted(_check_dataset(d, i).items()))
        for i, d in enumerate(raw_datasets)
    )

    raw_knobs = table.get("knobs", {})
    if not isinstance(raw_knobs, dict):
        raise RecipeError(f"[knobs] must be a table, got {raw_knobs!r}")
    knobs: list[tuple[str, tuple]] = []
    for knob in raw_knobs:
        if knob not in KNOBS:
            raise RecipeError(
                f"unknown knob {knob!r}; knobs: {', '.join(sorted(KNOBS))}"
            )
        vals = raw_knobs[knob]
        if not isinstance(vals, list):
            vals = [vals]
        if not vals:
            raise RecipeError(f"knob axis {knob!r} is empty")
        knobs.append((knob, tuple(KNOBS[knob](v) for v in vals)))
    knobs.sort()

    raw_defaults = table.get("defaults", {})
    if not isinstance(raw_defaults, dict):
        raise RecipeError(f"[defaults] must be a table, got {raw_defaults!r}")
    valid = RecipeDefaults.__dataclass_fields__
    extras = set(raw_defaults) - set(valid)
    if extras:
        raise RecipeError(f"unknown defaults: {sorted(extras)}")
    defaults = RecipeDefaults(**raw_defaults)

    spec = RecipeSpec(
        name=rname,
        algos=algos,
        formats=formats,
        reorders=reorders,
        layouts=layouts,
        datasets=datasets,
        knobs=tuple(knobs),
        defaults=defaults,
    )
    spec.expand()  # validation: every combination must be coherent
    return spec


def load_recipe(path: str) -> RecipeSpec:
    """Load + validate a recipe from a ``.toml`` or ``.json`` file."""
    table = _load_table(path)
    stem = os.path.splitext(os.path.basename(path))[0]
    return parse_recipe(table, name=stem)
