"""Recipe runner: execute an expanded recipe and emit its report.

One :func:`run_recipe` call walks the deterministic cell list from
:meth:`repro.recipes.spec.RecipeSpec.expand` and drives every cell
through the existing execution paths — :func:`repro.bench.harness.
run_profiled` for single-GPU cells, :class:`repro.dist.cluster.
ShardedCluster` plus the distributed drivers for multi-GPU cells — so
a recipe run prices exactly what ``repro profile`` / ``repro dist``
would price, knob for knob.

The report joins everything the observability stack already records:
the full per-cell metrics payloads (emulated hardware counters,
per-array attribution, roofline bounds, per-tier wire bytes, what-if
panels) under ``"runs"``, a compact per-cell summary table under
``"recipe"``, and — when a trajectory directory is supplied —
per-cell deltas against the latest bench entry under
``"trajectory_deltas"``.  Nothing in the payload depends on
wall-clock, so repeated invocations of the same recipe produce
byte-identical reports (CI gates this with ``cmp``).
"""

from __future__ import annotations

import numpy as np

from repro.obs.metrics import METRICS_SCHEMA, git_sha
from repro.recipes.spec import RecipeCell, RecipeSpec, dataset_id

__all__ = [
    "build_cell_graph",
    "build_topology",
    "cell_summary",
    "make_weights",
    "run_recipe",
]


def build_cell_graph(dataset: dict, reorder: str):
    """Materialise one dataset spec and apply a vertex reorder."""
    if dataset["kind"] == "rmat":
        from repro.datasets.rmat import rmat_graph

        graph = rmat_graph(
            scale=dataset["scale"],
            edge_factor=dataset["edge_factor"],
            seed=dataset["seed"],
            name=dataset_id(dataset),
        )
    else:
        from repro.datasets.web import web_graph

        graph = web_graph(
            num_nodes=dataset["num_nodes"],
            avg_degree=dataset["edge_factor"],
            seed=dataset["seed"],
            name=dataset_id(dataset),
        )
    if reorder == "degree":
        from repro.reorder.degree import degree_order

        graph = graph.relabelled(degree_order(graph))
    elif reorder == "random":
        from repro.reorder.random_order import random_order

        graph = graph.relabelled(random_order(graph, seed=dataset["seed"]))
    return graph


def make_weights(graph, seed: int) -> np.ndarray:
    """Deterministic edge weights in CSR slot order (bench convention)."""
    rng = np.random.default_rng(seed)
    return rng.uniform(0.1, 1.0, graph.num_edges).astype(np.float32)


def build_topology(
    nodes: int,
    gpus: int,
    device,
    link_gbs: float,
    inter_gbs: float,
    contention: float,
):
    """The link topology one recipe/tune cell runs on.

    Two-tier when ``nodes > 1`` (the paper's multi-node shape), flat
    peer links otherwise; message latency tracks the device's launch
    overhead, matching the ``repro dist`` CLI.
    """
    from repro.dist.topology import LinkTopology

    if nodes > 1:
        return LinkTopology.two_tier(
            num_nodes=nodes,
            gpus_per_node=gpus // nodes,
            link_bandwidth=link_gbs * 1e9,
            inter_bandwidth=inter_gbs * 1e9,
            contention=contention,
            message_latency_s=device.launch_overhead_s,
        )
    return LinkTopology(
        num_gpus=gpus,
        link_bandwidth=link_gbs * 1e9,
        contention=contention,
        message_latency_s=device.launch_overhead_s,
    )


def _single_backend(cell: RecipeCell, graph, device):
    from repro.core.listcache import DecodedListCache

    knobs = cell.knobs_dict
    needs_weights = cell.algo in ("sssp", "delta")
    weight_bytes = 4 * graph.num_edges if needs_weights else 0
    if cell.fmt == "csr":
        from repro.formats.csr import CSRGraph
        from repro.traversal.backends import CSRBackend

        backend = CSRBackend(
            CSRGraph.from_graph(graph), device, weight_bytes=weight_bytes
        )
    elif cell.fmt == "efg":
        from repro.core.efg import DEFAULT_QUANTUM, efg_encode
        from repro.traversal.backends import EFGBackend

        quantum = int(knobs.get("quantum", DEFAULT_QUANTUM))
        backend = EFGBackend(
            efg_encode(graph, quantum=quantum),
            device,
            weight_bytes=weight_bytes,
        )
    else:
        from repro.formats.cgr import cgr_encode
        from repro.traversal.backends import CGRBackend

        backend = CGRBackend(
            cgr_encode(graph), device, weight_bytes=weight_bytes
        )
    cache_kb = int(knobs.get("cache_kb", 0))
    if cache_kb:
        backend.attach_cache(DecodedListCache(budget_bytes=cache_kb * 1024))
    return backend


def _run_serve(cell: RecipeCell, graph, device, defaults) -> dict:
    """One serve cell: closed-loop drive over the recipe's backend.

    Reuses :func:`_single_backend` so the quantum/cache knobs price
    exactly as on the batch cells; the serve-only knobs (deadline mix,
    hot fraction) shape the query stream.  The payload carries both the
    PR 9 ``serve`` totals and the telemetry ``service`` section, so
    recipe grids can sweep deadline mixes and diff p99 latency.
    """
    from repro.obs.metrics import run_metrics
    from repro.serve import GraphService, drive, make_labeled_stream
    from repro.serve.container import GraphContainer
    from repro.serve.driver import parse_deadline_mix

    knobs = cell.knobs_dict
    backend = _single_backend(cell, graph, device)
    service = GraphService(
        backend=backend, epoch=GraphContainer.from_graph(graph).epoch
    )
    deadline_mix = parse_deadline_mix(str(knobs.get("deadline_ms", "none")))
    sources, classes = make_labeled_stream(
        graph.num_nodes,
        defaults.serve_queries,
        hot_fraction=float(knobs.get("hot_fraction", 0.5)),
        seed=defaults.source_seed,
    )
    drive(
        service, sources, deadline_mix=deadline_mix,
        burst=defaults.serve_burst, classes=classes,
    )
    return run_metrics(
        service.backend.engine,
        meta=_cell_meta(cell, defaults),
        sections={
            "serve": service.metrics_section(),
            "service": service.service_section(),
        },
    )


def _run_single(cell: RecipeCell, graph, device, defaults) -> dict:
    """One single-GPU cell through :func:`run_profiled`."""
    from repro.bench.harness import pick_sources, run_profiled

    if cell.algo == "serve":
        return _run_serve(cell, graph, device, defaults)
    knobs = cell.knobs_dict
    backend = _single_backend(cell, graph, device)
    kwargs: dict = {}
    if "sort_fraction" in knobs:
        kwargs["sort_fraction"] = float(knobs["sort_fraction"])
    source = 0
    sources = None
    if cell.algo == "msbfs":
        sources = pick_sources(
            graph, defaults.num_sources, seed=defaults.source_seed
        )
    elif cell.algo != "pagerank":
        source = int(pick_sources(graph, 1, seed=defaults.source_seed)[0])
    weights = None
    if cell.algo in ("sssp", "delta"):
        weights = make_weights(graph, defaults.weight_seed)
    run = run_profiled(
        cell.algo,
        backend,
        source=source,
        sources=sources,
        weights=weights,
        meta=_cell_meta(cell, defaults),
        **kwargs,
    )
    return run.metrics


def _run_dist(cell: RecipeCell, graph, device, defaults) -> dict:
    """One multi-GPU cell through the sharded-cluster drivers."""
    from repro.bench.harness import pick_sources
    from repro.dist.cluster import ShardedCluster
    from repro.dist.report import dist_run_metrics

    knobs = cell.knobs_dict
    topology = build_topology(
        cell.nodes,
        cell.gpus,
        device,
        defaults.link_gbs,
        defaults.inter_gbs,
        defaults.contention,
    )
    needs_weights = cell.algo == "sssp"
    cluster = ShardedCluster.build(
        graph,
        cell.gpus,
        device,
        fmt=cell.fmt,
        wire=str(knobs.get("wire", "auto")),
        schedule=str(
            knobs.get(
                "schedule", "hierarchical" if cell.nodes > 1 else "flat"
            )
        ),
        topology=topology,
        with_weights=needs_weights,
        overlap=bool(knobs.get("overlap", True)),
    )
    kwargs: dict = {}
    if "sort_fraction" in knobs:
        kwargs["sort_fraction"] = float(knobs["sort_fraction"])
    if cell.algo == "pagerank":
        from repro.dist.pagerank import distributed_pagerank

        result = distributed_pagerank(cluster)
    else:
        source = int(pick_sources(graph, 1, seed=defaults.source_seed)[0])
        if cell.algo == "bfs":
            from repro.dist.bfs import distributed_bfs

            result = distributed_bfs(cluster, source, **kwargs)
        else:
            from repro.dist.sssp import distributed_sssp

            result = distributed_sssp(
                cluster,
                source,
                make_weights(graph, defaults.weight_seed),
                **kwargs,
            )
    payload = dist_run_metrics(cluster, meta=_cell_meta(cell, defaults))
    payload["totals"]["run_gteps"] = float(result.gteps)
    return payload


def _cell_meta(cell: RecipeCell, defaults) -> dict:
    return {
        "cell": cell.name,
        "dataset": dataset_id(cell.dataset_dict),
        "reorder": cell.reorder,
        "source_seed": defaults.source_seed,
        "weight_seed": defaults.weight_seed,
        "knobs": {str(k): v for k, v in cell.knobs},
    }


def cell_summary(cell: RecipeCell, payload: dict) -> dict:
    """The compact per-cell row joined into the recipe section.

    Pulls one number per observability layer: simulated seconds and
    byte totals (engine), GTEPS (driver), the bounding kernel and its
    roofline resource (PR 2), cached + wire/tier bytes (PR 5/6), and
    the best analytical what-if on file (PR 7) — the row the autotuner
    shortlists from.
    """
    totals = payload.get("totals", {})
    row: dict = {
        "seconds": float(totals.get("elapsed_seconds", 0.0)),
        "device_bytes": float(totals.get("device_bytes", 0.0)),
        "cached_bytes": float(totals.get("cached_bytes", 0.0)),
    }
    gauges = payload.get("gauges", {})
    gteps = totals.get("run_gteps", gauges.get("run.gteps"))
    if gteps is not None:
        row["gteps"] = float(gteps)
    roofline = payload.get("roofline", {})
    kernels = payload.get("kernels", {})
    if roofline and kernels:
        top = max(
            (k for k in roofline if k in kernels),
            key=lambda k: kernels[k].get("seconds", 0.0),
            default=None,
        )
        if top is not None:
            row["top_kernel"] = top
            row["top_kernel_bound"] = str(roofline[top].get("bound", ""))
    counters = payload.get("counters", {})
    if cell.is_dist:
        row["wire_bytes"] = float(counters.get("dist.wire_bytes", 0.0))
        tiers = payload.get("tiers", {})
        if cell.nodes > 1 and "inter" in tiers:
            row["inter_bytes"] = float(tiers["inter"].get("bytes", 0.0))
    serve = payload.get("serve")
    if serve is not None:
        service = payload.get("service", {})
        row["qps"] = float(serve.get("qps", 0.0))
        row["p99_latency_s"] = float(
            service.get("latency", {}).get("p99", 0.0)
        )
        row["miss_rate"] = float(
            service.get("rates", {}).get("miss_rate", 0.0)
        )
    whatif = payload.get("whatif", {})
    if whatif:
        best = min(
            whatif.items(),
            key=lambda kv: (kv[1].get("predicted_seconds", 0.0), kv[0]),
        )
        row["best_whatif"] = best[0]
        row["best_whatif_speedup"] = float(best[1].get("speedup", 1.0))
    return row


def _trajectory_delta(cell: RecipeCell, row: dict, baseline: dict) -> dict | None:
    """Delta of this cell's headline numbers vs the latest bench entry.

    Cells and bench workloads are matched on the ``algo/fmt`` key the
    bench suite uses; cells the suite never ran have no baseline and
    contribute no delta.
    """
    workloads = baseline.get("workloads", {})
    key = f"{cell.algo}/{cell.fmt}"
    if cell.is_dist:
        key = f"dist_{cell.algo}/{cell.knobs_dict.get('wire', 'auto')}"
    payload = workloads.get(key)
    if payload is None:
        return None
    base_seconds = float(
        payload.get("totals", {}).get("elapsed_seconds", 0.0)
    )
    if base_seconds <= 0.0:
        return None
    return {
        "workload": key,
        "baseline_seconds": base_seconds,
        "seconds": row["seconds"],
        "speedup": base_seconds / row["seconds"]
        if row["seconds"] > 0.0
        else 0.0,
    }


def run_recipe(
    spec: RecipeSpec,
    against: str | None = None,
    progress=None,
) -> dict:
    """Execute every cell of ``spec`` and assemble the recipe report.

    ``against`` names a trajectory directory (or single bench file);
    its latest readable entry supplies the trajectory deltas.
    ``progress`` is an optional callable receiving one line per cell
    (the CLI passes ``print``).
    """
    from repro.gpusim.device import TITAN_XP

    cells = spec.expand()
    defaults = spec.defaults
    device = TITAN_XP.scaled(defaults.device_scale)
    baseline = None
    if against is not None:
        from repro.bench.trajectory import load_bench

        baseline = load_bench(against)

    graphs: dict = {}
    recipe_rows: dict = {}
    runs: dict = {}
    deltas: dict = {}
    for cell in cells:
        gkey = (cell.dataset, cell.reorder)
        if gkey not in graphs:
            graphs[gkey] = build_cell_graph(cell.dataset_dict, cell.reorder)
        graph = graphs[gkey]
        if cell.is_dist:
            payload = _run_dist(cell, graph, device, defaults)
        else:
            payload = _run_single(cell, graph, device, defaults)
        row = cell_summary(cell, payload)
        recipe_rows[cell.name] = row
        runs[cell.name] = payload
        if baseline is not None:
            delta = _trajectory_delta(cell, row, baseline)
            if delta is not None:
                deltas[cell.name] = delta
        if progress is not None:
            progress(
                f"{cell.name}: {row['seconds'] * 1e3:.4f} ms simulated"
            )

    meta = {
        "recipe": spec.name,
        "cells": len(cells),
        "device_scale": defaults.device_scale,
        "source_seed": defaults.source_seed,
        "weight_seed": defaults.weight_seed,
        "git_sha": git_sha(),
        "schema_versions": {"metrics": METRICS_SCHEMA},
    }
    if baseline is not None:
        meta["against_suite"] = baseline.get("meta", {}).get("suite", {})
    report = {
        "schema": METRICS_SCHEMA,
        "meta": dict(sorted(meta.items())),
        "recipe": {name: dict(sorted(recipe_rows[name].items()))
                   for name in sorted(recipe_rows)},
        "runs": {name: runs[name] for name in sorted(runs)},
    }
    if baseline is not None:
        report["trajectory_deltas"] = {
            name: dict(sorted(deltas[name].items()))
            for name in sorted(deltas)
        }
    return report
