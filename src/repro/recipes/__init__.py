"""Declarative experiment recipes (spec, expansion, runner)."""

from repro.recipes.runner import build_cell_graph, cell_summary, run_recipe
from repro.recipes.spec import (
    ALGOS,
    DIST_ALGOS,
    FORMATS,
    KNOBS,
    REORDERS,
    RecipeCell,
    RecipeDefaults,
    RecipeError,
    RecipeSpec,
    dataset_id,
    load_recipe,
    parse_recipe,
)

__all__ = [
    "ALGOS",
    "DIST_ALGOS",
    "FORMATS",
    "KNOBS",
    "REORDERS",
    "RecipeCell",
    "RecipeDefaults",
    "RecipeError",
    "RecipeSpec",
    "build_cell_graph",
    "cell_summary",
    "dataset_id",
    "load_recipe",
    "parse_recipe",
    "run_recipe",
]
