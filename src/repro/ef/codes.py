"""Classic instantaneous integer codes: unary, Elias gamma, zeta_k.

The comparator formats' reference implementations use these bit-level
codes (BV and CGR encode gaps with zeta codes; Elias-Fano's unary
upper half is itself the ``gamma`` building block).  Our byte-oriented
CGR/BV modules use 7-bit varints for speed; this module provides the
faithful bit-level codecs so the compression gap between byte- and
bit-aligned coding can be measured (and because any self-respecting
compression library ships them).

All codes operate on non-negative integers, LSB-first bitstreams.
"""

from __future__ import annotations

import numpy as np

from repro.ef.bitstream import BitReader, BitWriter

__all__ = [
    "gamma_encode",
    "gamma_decode",
    "zeta_encode",
    "zeta_decode",
    "encode_gap_stream",
    "decode_gap_stream",
    "gamma_length_bits",
    "zeta_length_bits",
]


def gamma_encode(writer: BitWriter, value: int) -> None:
    """Elias gamma: unary(bit-length - 1) then the low bits of value+1.

    Codes ``value >= 0`` by coding ``x = value + 1 >= 1``.
    """
    if value < 0:
        raise ValueError(f"gamma requires non-negative value, got {value}")
    x = value + 1
    nbits = x.bit_length()
    writer.write_unary(nbits - 1)
    if nbits > 1:
        writer.write_bits(x - (1 << (nbits - 1)), nbits - 1)


def gamma_decode(reader: BitReader) -> int:
    """Inverse of :func:`gamma_encode`."""
    nbits = reader.read_unary() + 1
    rest = reader.read_bits(nbits - 1) if nbits > 1 else 0
    return (1 << (nbits - 1)) + rest - 1


def gamma_length_bits(value: int) -> int:
    """Code length of ``value`` under gamma."""
    if value < 0:
        raise ValueError(f"negative value: {value}")
    nbits = (value + 1).bit_length()
    return 2 * nbits - 1


def zeta_encode(writer: BitWriter, value: int, k: int = 3) -> None:
    """Boldi-Vigna zeta_k code — the WebGraph gap code.

    ``value + 1`` lies in the interval ``[2^(h*k), 2^((h+1)*k))`` for a
    unique ``h >= 0``; the code is ``unary(h)`` followed by a minimal
    binary code of the offset within the interval (left half of the
    interval gets ``(h+1)k - 1`` bits, right half ``(h+1)k`` bits).
    zeta_1 equals gamma.
    """
    if value < 0:
        raise ValueError(f"zeta requires non-negative value, got {value}")
    if k < 1:
        raise ValueError(f"zeta shape k must be >= 1, got {k}")
    x = value + 1
    h = (x.bit_length() - 1) // k
    writer.write_unary(h)
    lo = 1 << (h * k)
    hi = 1 << ((h + 1) * k)
    offset = x - lo
    # Minimal binary code over an interval of size m = hi - lo: the
    # first `short` values take `width` bits, the rest width + 1.
    m = hi - lo
    width = m.bit_length() - 1
    short = (1 << (width + 1)) - m
    if offset < short:
        writer.write_bits(offset, width)
    else:
        # Long form: the decoder reads `width` bits first and inspects
        # them as the high part, so emit high chunk then the final bit.
        long_code = offset + short
        writer.write_bits(long_code >> 1, width)
        writer.write_bit(long_code & 1)


def zeta_decode(reader: BitReader, k: int = 3) -> int:
    """Inverse of :func:`zeta_encode`."""
    h = reader.read_unary()
    lo = 1 << (h * k)
    hi = 1 << ((h + 1) * k)
    m = hi - lo
    width = m.bit_length() - 1
    short = (1 << (width + 1)) - m
    first = reader.read_bits(width)
    if first < short:
        offset = first
    else:
        offset = (first << 1 | reader.read_bit()) - short
    return lo + offset - 1


def zeta_length_bits(value: int, k: int = 3) -> int:
    """Code length of ``value`` under zeta_k."""
    if value < 0:
        raise ValueError(f"negative value: {value}")
    x = value + 1
    h = (x.bit_length() - 1) // k
    lo = 1 << (h * k)
    hi = 1 << ((h + 1) * k)
    m = hi - lo
    width = m.bit_length() - 1
    short = (1 << (width + 1)) - m
    base = h + 1 + width
    return base if (x - lo) < short else base + 1


def encode_gap_stream(values: np.ndarray, k: int = 3) -> np.ndarray:
    """Zeta-code a whole stream of non-negative ints into bytes."""
    writer = BitWriter(capacity_bits=max(64, 8 * len(values)))
    for value in np.asarray(values, dtype=np.int64):
        zeta_encode(writer, int(value), k)
    return writer.getvalue()


def decode_gap_stream(data: np.ndarray, count: int, k: int = 3) -> np.ndarray:
    """Decode ``count`` zeta_k values from a byte blob."""
    reader = BitReader(np.asarray(data, dtype=np.uint8))
    out = np.empty(count, dtype=np.int64)
    for i in range(count):
        out[i] = zeta_decode(reader, k)
    return out
