"""Partitioned Elias-Fano (PEF) — the Sec. IX extension.

Plain EF spends ``2 + ceil(log2(u/n))`` bits per element even on highly
compressible runs (e.g. web-graph lists ``[0, 1, ..., n-2, u-1]``).
PEF (Ottaviano & Venturini) partitions the sequence and encodes each
partition with the cheapest of several representations.  We implement
the three classic partition codecs:

* ``RUN`` — the partition is a contiguous run ``[first, first+m)``;
  only the skip metadata is needed (0 payload bits).
* ``BITMAP`` — a dense partition is stored as a plain bitvector over its
  local universe.
* ``EF`` — fall back to Elias-Fano relative to the partition base.

Partition boundaries here are fixed-size (a simplification of the
paper's dynamic-programming splitter, adequate to demonstrate the
compression win on run-heavy inputs and the neutrality elsewhere).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.core.errors import CorruptMetadataError, CorruptStreamError
from repro.ef.bounds import ef_total_bits
from repro.ef.encoding import EFSequence, ef_decode, ef_encode

__all__ = ["PartitionCodec", "PEFPartition", "PEFSequence", "pef_encode", "pef_decode"]

#: Default number of elements per partition.
DEFAULT_PARTITION_SIZE = 128


class PartitionCodec(enum.Enum):
    """Representation chosen for one partition."""

    RUN = "run"
    BITMAP = "bitmap"
    EF = "ef"


@dataclass(frozen=True)
class PEFPartition:
    """One encoded partition.

    ``base`` is subtracted from all elements before encoding; ``count``
    elements with local universe ``local_u`` (largest local value).
    """

    codec: PartitionCodec
    base: int
    count: int
    local_u: int
    payload: np.ndarray | EFSequence | None

    @property
    def payload_bits(self) -> int:
        """Payload size in bits (excludes skip metadata)."""
        if self.codec is PartitionCodec.RUN:
            return 0
        if self.codec is PartitionCodec.BITMAP:
            _require_payload_type(self, np.ndarray)
            return int(self.payload.shape[0]) * 8
        _require_payload_type(self, EFSequence)
        return self.payload.nbytes * 8


def _require_payload_type(partition: "PEFPartition", expected: type) -> None:
    """Typed replacement for the old ``assert isinstance`` guards.

    Those asserts vanished under ``python -O``, letting a corrupt
    partition reach the codec-specific decode with the wrong payload
    class and die on an arbitrary ``AttributeError``.
    """
    if not isinstance(partition.payload, expected):
        raise CorruptMetadataError(
            f"{partition.codec.value} partition carries "
            f"{type(partition.payload).__name__} payload, expected "
            f"{expected.__name__}",
            fmt="pef",
        )


@dataclass(frozen=True)
class PEFSequence:
    """A partitioned-EF-coded strictly-increasing sequence."""

    n: int
    u: int
    partitions: tuple[PEFPartition, ...]

    @property
    def nbytes(self) -> int:
        """Total bytes: payloads plus 8 B of skip metadata per partition.

        Skip metadata per partition: base (4 B), count+codec (4 B) —
        matching the fixed-width skip lists PEF implementations use.
        """
        payload = sum((p.payload_bits + 7) >> 3 for p in self.partitions)
        return payload + 8 * len(self.partitions)


def _encode_partition(values: np.ndarray) -> PEFPartition:
    """Pick the cheapest codec for one partition of strictly-increasing ints."""
    base = int(values[0])
    local = (values - base).astype(np.int64)
    count = int(values.shape[0])
    local_u = int(local[-1])

    # RUN: elements are exactly base, base+1, ..., base+count-1.
    if local_u == count - 1:
        return PEFPartition(PartitionCodec.RUN, base, count, local_u, None)

    bitmap_bits = local_u + 1
    ef_bits = ef_total_bits(count, local_u) if local_u > 0 else 8
    if bitmap_bits <= ef_bits:
        bitmap = np.zeros((bitmap_bits + 7) >> 3, dtype=np.uint8)
        np.bitwise_or.at(
            bitmap, local >> 3, (np.uint8(1) << (local & 7).astype(np.uint8))
        )
        return PEFPartition(PartitionCodec.BITMAP, base, count, local_u, bitmap)

    seq = ef_encode(local, quantum=1 << 30)  # short partitions: no fwd ptrs
    return PEFPartition(PartitionCodec.EF, base, count, local_u, seq)


#: A run must be at least this long for a dedicated RUN partition to
#: amortise its skip metadata (8 B ~= 5-6 EF-coded elements).
MIN_RUN_PARTITION = 8


def _run_aware_boundaries(values: np.ndarray, partition_size: int) -> list[int]:
    """Greedy partition boundaries aligned to long runs.

    A light-weight stand-in for the dynamic-programming splitter of
    Ottaviano & Venturini: maximal runs of consecutive integers of
    length >= :data:`MIN_RUN_PARTITION` become their own partitions
    (encodable as RUN at zero payload bits); the stretches between
    runs are chopped into ``partition_size`` chunks.
    """
    n = values.shape[0]
    breaks = np.flatnonzero(np.diff(values) != 1)
    starts = np.concatenate([[0], breaks + 1])
    ends = np.concatenate([breaks + 1, [n]])
    lengths = ends - starts
    bounds = [0]
    cursor = 0
    for s, e, ln in zip(starts, ends, lengths):
        if ln < MIN_RUN_PARTITION:
            continue
        # Chunk the gap region before the run.
        while s - cursor > partition_size:
            cursor += partition_size
            bounds.append(cursor)
        if s > cursor:
            bounds.append(s)
        bounds.append(e)
        cursor = e
    while n - cursor > partition_size:
        cursor += partition_size
        bounds.append(cursor)
    if bounds[-1] != n:
        bounds.append(n)
    return bounds


#: Per-partition metadata bytes (skip entry) used by the DP cost model.
_SKIP_BYTES = 8


def _partition_cost_bits(values: np.ndarray, a: int, b: int) -> int:
    """Payload bits the cheapest codec needs for ``values[a:b]``."""
    count = b - a
    local_u = int(values[b - 1] - values[a])
    if local_u == count - 1:
        return 0  # RUN
    bitmap_bits = local_u + 1
    ef_bits = ef_total_bits(count, local_u) if local_u > 0 else 8
    return min(bitmap_bits, ef_bits)


def _dp_boundaries(values: np.ndarray, max_span: int = 4096) -> list[int]:
    """Near-optimal partition boundaries by shortest-path DP.

    Ottaviano & Venturini's (1 + eps)-approximation restricts candidate
    partition lengths to a geometric set; we use the power-of-two
    ladder ``{1, 2, 4, ..., max_span}`` *plus, per position, the start
    of the maximal run ending there* — so the DP can align exactly to
    run boundaries, which the pure geometric ladder cannot.  ``dp[j]``
    is the cheapest encoding of the prefix ``values[:j]``.
    """
    n = values.shape[0]
    spans = [1]
    while spans[-1] < min(max_span, n):
        spans.append(spans[-1] * 2)
    # run_start[t] = index of the first element of the maximal run of
    # consecutive integers containing values[t].
    run_start = np.zeros(n, dtype=np.int64)
    for t in range(1, n):
        run_start[t] = run_start[t - 1] if values[t] == values[t - 1] + 1 else t
    skip_bits = 8 * _SKIP_BYTES
    dp = np.full(n + 1, np.iinfo(np.int64).max, dtype=np.int64)
    dp[0] = 0
    parent = np.zeros(n + 1, dtype=np.int64)
    for j in range(1, n + 1):
        candidates = [j - span for span in spans if j - span >= 0]
        candidates.append(int(run_start[j - 1]))  # align to the run start
        for i in candidates:
            if i >= j:
                continue
            cost = dp[i] + skip_bits + _partition_cost_bits(values, i, j)
            if cost < dp[j]:
                dp[j] = cost
                parent[j] = i
    bounds = [n]
    while bounds[-1] > 0:
        bounds.append(int(parent[bounds[-1]]))
    bounds.reverse()
    return bounds


def pef_encode(
    values: np.ndarray,
    partition_size: int = DEFAULT_PARTITION_SIZE,
    strategy: str = "runs",
) -> PEFSequence:
    """Encode a strictly-increasing sequence with PEF.

    Parameters
    ----------
    values:
        Strictly increasing non-negative integers.
    partition_size:
        Chunk size for non-run regions (and the fixed strategy).
    strategy:
        ``"runs"`` (default) aligns partition boundaries to maximal
        runs — the property the Sec. IX discussion is about;
        ``"fixed"`` uses fixed-size partitions (the simplest PEF
        baseline); ``"optimal"`` runs the Ottaviano-Venturini-style
        shortest-path DP over power-of-two spans (slowest, smallest).
    """
    values = np.asarray(values, dtype=np.int64)
    if values.ndim != 1 or values.shape[0] == 0:
        raise ValueError("pef_encode requires a non-empty 1-D sequence")
    if np.any(np.diff(values) <= 0):
        raise ValueError("pef_encode requires a strictly increasing sequence")
    if values[0] < 0:
        raise ValueError("pef_encode requires non-negative values")
    if partition_size <= 0:
        raise ValueError(f"partition size must be positive, got {partition_size}")
    if strategy == "fixed":
        bounds = list(range(0, values.shape[0], partition_size)) + [values.shape[0]]
        bounds = sorted(set(bounds))
    elif strategy == "runs":
        bounds = _run_aware_boundaries(values, partition_size)
    elif strategy == "optimal":
        # The DP's candidate spans are geometric + run-aligned; the
        # greedy strategies can occasionally find boundaries outside
        # that set, so take the best of all three (still offline-cheap
        # and guarantees optimal <= runs <= ... in bytes).
        best: PEFSequence | None = None
        for alt in ("fixed", "runs"):
            seq = pef_encode(values, partition_size, strategy=alt)
            if best is None or seq.nbytes < best.nbytes:
                best = seq
        dp_bounds = _dp_boundaries(values)
        parts = [
            _encode_partition(values[a:b])
            for a, b in zip(dp_bounds[:-1], dp_bounds[1:])
        ]
        dp_seq = PEFSequence(
            n=int(values.shape[0]), u=int(values[-1]), partitions=tuple(parts)
        )
        return dp_seq if dp_seq.nbytes <= best.nbytes else best
    else:
        raise ValueError(f"unknown strategy {strategy!r}")
    parts = [
        _encode_partition(values[a:b]) for a, b in zip(bounds[:-1], bounds[1:])
    ]
    seq = PEFSequence(
        n=int(values.shape[0]), u=int(values[-1]), partitions=tuple(parts)
    )
    if len(parts) > 1:
        # PEF always considers the trivial split; on short or
        # structure-free lists the skip metadata of many partitions can
        # exceed what partitioning saves.
        whole = PEFSequence(
            n=seq.n, u=seq.u, partitions=(_encode_partition(values),)
        )
        if whole.nbytes <= seq.nbytes:
            return whole
    return seq


def pef_to_blob(seq: PEFSequence) -> np.ndarray:
    """Serialize a PEF sequence to a byte blob.

    Layout (little-endian): ``u16 #partitions``, then per partition a
    skip entry ``u32 base | u16 count | u8 codec | u8 pad`` (the 8 B of
    metadata :attr:`PEFSequence.nbytes` accounts), followed by all
    payloads back to back, byte aligned, in partition order.
    """
    if len(seq.partitions) >= 1 << 16:
        raise ValueError("too many partitions for u16 header")
    header = bytearray()
    header += int(len(seq.partitions)).to_bytes(2, "little")
    payloads = bytearray()
    codec_ids = {PartitionCodec.RUN: 0, PartitionCodec.BITMAP: 1,
                 PartitionCodec.EF: 2}
    for p in seq.partitions:
        if p.count >= 1 << 16 or p.base >= 1 << 32:
            raise ValueError("partition exceeds skip-entry field widths")
        header += int(p.base).to_bytes(4, "little")
        header += int(p.count).to_bytes(2, "little")
        header += bytes([codec_ids[p.codec], 0])
        if p.codec is PartitionCodec.BITMAP:
            _require_payload_type(p, np.ndarray)
            payloads += int(p.payload.shape[0]).to_bytes(3, "little")
            payloads += p.payload.tobytes()
        elif p.codec is PartitionCodec.EF:
            _require_payload_type(p, EFSequence)
            blob = p.payload.to_blob()
            payloads += int(blob.shape[0]).to_bytes(3, "little")
            payloads += int(p.payload.num_lower_bits).to_bytes(1, "little")
            payloads += int(p.payload.upper.shape[0]).to_bytes(3, "little")
            payloads += blob.tobytes()
    return np.frombuffer(bytes(header) + bytes(payloads), dtype=np.uint8)


def pef_from_blob(blob: np.ndarray) -> np.ndarray:
    """Decode a :func:`pef_to_blob` blob back to the original values.

    Every read is bounds-checked: a truncated blob, an unknown codec id
    or a bitmap with fewer set bits than its skip entry promises raises
    a typed :class:`CorruptStreamError` / :class:`CorruptMetadataError`
    instead of slicing garbage.
    """
    data = np.asarray(blob, dtype=np.uint8)
    raw = data.tobytes()

    def _take(pos: int, n: int, what: str) -> tuple[bytes, int]:
        if pos + n > len(raw):
            raise CorruptStreamError(
                f"blob truncated reading {what} at byte {pos} "
                f"({len(raw)} bytes total)",
                fmt="pef",
            )
        return raw[pos : pos + n], pos + n

    chunk, pos = _take(0, 2, "partition count")
    npart = int.from_bytes(chunk, "little")
    skips = []
    for p in range(npart):
        chunk, pos = _take(pos, 8, f"skip entry {p}")
        base = int.from_bytes(chunk[0:4], "little")
        count = int.from_bytes(chunk[4:6], "little")
        codec = chunk[6]
        if codec > 2:
            raise CorruptMetadataError(
                f"unknown codec id {codec} in skip entry {p}", fmt="pef"
            )
        skips.append((base, count, codec))
    out: list[np.ndarray] = []
    for base, count, codec in skips:
        if codec == 0:  # RUN
            local = np.arange(count, dtype=np.int64)
        elif codec == 1:  # BITMAP
            chunk, pos = _take(pos, 3, "bitmap length")
            nbytes = int.from_bytes(chunk, "little")
            chunk, pos = _take(pos, nbytes, "bitmap payload")
            bitmap = np.frombuffer(chunk, dtype=np.uint8)
            bits = np.unpackbits(bitmap, bitorder="little")
            local = np.flatnonzero(bits).astype(np.int64)
            if local.shape[0] != count:
                raise CorruptStreamError(
                    f"bitmap has {local.shape[0]} set bits, skip entry "
                    f"promises {count}",
                    fmt="pef",
                )
        else:  # EF
            chunk, pos = _take(pos, 7, "EF partition header")
            nbytes = int.from_bytes(chunk[0:3], "little")
            l = chunk[3]
            upper_bytes = int.from_bytes(chunk[4:7], "little")
            if upper_bytes > nbytes:
                raise CorruptMetadataError(
                    f"EF partition claims {upper_bytes} upper bytes of a "
                    f"{nbytes}-byte payload",
                    fmt="pef",
                )
            chunk, pos = _take(pos, nbytes, "EF partition payload")
            payload = np.frombuffer(chunk, dtype=np.uint8)
            lower = payload[: nbytes - upper_bytes]
            upper = payload[nbytes - upper_bytes :]
            from repro.ef.forward import ForwardPointers

            seq = EFSequence(
                n=count, u=0, num_lower_bits=int(l), lower=lower, upper=upper,
                forward=ForwardPointers(
                    quantum=1 << 30, values=np.empty(0, dtype=np.uint32)
                ),
            )
            local = ef_decode(seq)
        out.append(local + base)
    if pos != len(raw):
        raise CorruptStreamError(
            f"{len(raw) - pos} trailing bytes after the last partition",
            fmt="pef",
        )
    return np.concatenate(out) if out else np.empty(0, dtype=np.int64)


def pef_decode(seq: PEFSequence) -> np.ndarray:
    """Decode all partitions back to the original sequence."""
    out: list[np.ndarray] = []
    for p in seq.partitions:
        if p.codec is PartitionCodec.RUN:
            local = np.arange(p.count, dtype=np.int64)
        elif p.codec is PartitionCodec.BITMAP:
            _require_payload_type(p, np.ndarray)
            bits = np.unpackbits(p.payload, bitorder="little")
            local = np.flatnonzero(bits).astype(np.int64)
            if local.shape[0] != p.count:
                raise CorruptStreamError(
                    f"bitmap has {local.shape[0]} set bits, partition "
                    f"promises {p.count}",
                    fmt="pef",
                )
        else:
            _require_payload_type(p, EFSequence)
            local = ef_decode(p.payload)
        out.append(local + p.base)
    return np.concatenate(out)
