"""Elias-Fano encoding substrate (Sec. IV).

Implements the quasi-succinct representation of monotone integer
sequences: lower bits stored contiguously, upper bits as unary-coded
gaps, ``select1``-based decoding, forward pointers for O(1) average
select, a-priori storage bounds, and the partitioned (PEF) extension
discussed in Sec. IX.
"""

from repro.ef.bitstream import BitReader, BitWriter, pack_bits, unpack_bits
from repro.ef.bounds import (
    ef_lower_bits,
    ef_total_bits,
    ef_upper_bits,
    plain_binary_bits,
)
from repro.ef.encoding import (
    EFSequence,
    ef_decode,
    ef_decode_at,
    ef_decode_range,
    ef_encode,
)
from repro.ef.forward import ForwardPointers, build_forward_pointers
from repro.ef.partitioned import PEFSequence, pef_encode
from repro.ef.queries import ef_contains, ef_intersect, ef_next_geq
from repro.ef.select import select1_bitarray, select1_scalar

__all__ = [
    "BitReader",
    "BitWriter",
    "pack_bits",
    "unpack_bits",
    "EFSequence",
    "ef_encode",
    "ef_decode",
    "ef_decode_at",
    "ef_decode_range",
    "ForwardPointers",
    "build_forward_pointers",
    "PEFSequence",
    "pef_encode",
    "select1_bitarray",
    "select1_scalar",
    "ef_next_geq",
    "ef_contains",
    "ef_intersect",
    "ef_lower_bits",
    "ef_upper_bits",
    "ef_total_bits",
    "plain_binary_bits",
]
