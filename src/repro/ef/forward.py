"""Forward pointers for average-O(1) select (Sec. IV-A, Sec. VI-C).

Following the folly convention: for a list of size ``n`` and quantum
``k > 0`` we store ``floor(n / k)`` pointers, where pointer ``j``
(1-indexed) holds ``select1(j*k - 1) - (j*k - 1)`` — the *upper value*
rather than the raw select position, because it takes fewer bits and the
index can be re-added when needed.

To decode values ``[a, b]`` of a list, a thread block locates the
closest preceding pointer for ``a`` and the closest covering pointer
after ``b``, and only scans the upper-bits bytes in between (Fig. 6).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ef.select import select1_scalar

__all__ = ["ForwardPointers", "build_forward_pointers", "DEFAULT_QUANTUM"]

#: The paper's evaluation fixes k = 512 (Sec. VIII).
DEFAULT_QUANTUM = 512


@dataclass(frozen=True)
class ForwardPointers:
    """Precomputed select shortcuts for one EF upper-bits stream.

    Attributes
    ----------
    quantum:
        Spacing ``k`` between stored select positions.
    values:
        ``values[j] = select1((j+1)*k - 1) - ((j+1)*k - 1)`` — i.e. the
        decoded *upper half* of element ``(j+1)*k - 1``; uint32.
    """

    quantum: int
    values: np.ndarray

    def __post_init__(self) -> None:
        if self.quantum <= 0:
            raise ValueError(f"quantum must be positive, got {self.quantum}")

    @property
    def nbytes(self) -> int:
        """Storage cost of the pointer section (uint32 each)."""
        return int(self.values.shape[0]) * 4

    def floor_anchor(self, index: int) -> tuple[int, int]:
        """Closest preceding anchor for element ``index``.

        Returns ``(element_index, bit_position)`` where ``element_index``
        is the anchored element (``j*k - 1``) and ``bit_position`` the bit
        of its stop bit in the upper stream, or ``(-1, -1)`` when no
        pointer precedes ``index`` (scan from the beginning).

        The paper's example: for ``x_12`` with k=8, the pointer is at
        ``forward[floor((12+1)/8) - 1]`` anchoring ``x_7``.
        """
        if index < 0:
            raise ValueError(f"negative index: {index}")
        j = (index + 1) // self.quantum  # number of usable pointers
        j = min(j, self.values.shape[0])
        if j == 0:
            return -1, -1
        elem = j * self.quantum - 1
        upper_value = int(self.values[j - 1])
        return elem, upper_value + elem  # select1(elem) = upper + index

    def ceil_anchor(self, index: int, n: int) -> tuple[int, int]:
        """Closest anchor at or after element ``index``.

        Returns ``(element_index, bit_position)`` or ``(-1, -1)`` when no
        pointer covers ``index`` (scan to the end of the stream).  ``n``
        is the list length, used only for validation.
        """
        if not 0 <= index < n:
            raise ValueError(f"index {index} out of range for list of {n}")
        j = -(-(index + 1) // self.quantum)  # ceil division
        if j > self.values.shape[0]:
            return -1, -1
        elem = j * self.quantum - 1
        upper_value = int(self.values[j - 1])
        return elem, upper_value + elem


def build_forward_pointers(
    upper_bits: np.ndarray, n: int, quantum: int = DEFAULT_QUANTUM
) -> ForwardPointers:
    """Scan an upper-bits stream once and record the pointer values.

    Offline step (compression time).  Runs the sequential reference
    ``select1`` from each previous anchor so the build is O(stream bits)
    total, not O(n * stream).
    """
    if quantum <= 0:
        raise ValueError(f"quantum must be positive, got {quantum}")
    count = n // quantum
    values = np.empty(count, dtype=np.uint32)
    pos = 0
    done = -1  # index of the last element whose stop bit we've passed
    for j in range(1, count + 1):
        target = j * quantum - 1
        # Resume the scan from just past the previous anchor's stop bit.
        pos = select1_scalar(upper_bits, target - done - 1, start_bit=pos)
        values[j - 1] = pos - target
        done = target
        pos += 1  # next scan starts after this stop bit
    return ForwardPointers(quantum=quantum, values=values)
