"""A-priori Elias-Fano storage bounds (Sec. IV, Sec. VIII-A).

One of EFG's selling points: "we do not need to compress the graph to
know how well it will compress" — the size of an EF-coded list depends
only on its length ``n`` and an upper bound ``u`` on its largest value.
These helpers compute the exact section sizes the encoder will produce,
and are also used by the memory manager to plan residency.
"""

from __future__ import annotations

__all__ = [
    "ef_num_lower_bits",
    "ef_lower_bits",
    "ef_upper_bits",
    "ef_total_bits",
    "plain_binary_bits",
]


def ef_num_lower_bits(n: int, u: int) -> int:
    """Per-element lower-bit width ``l = max(0, floor(log2(u / n)))``.

    ``u`` is an upper bound on the largest element; ``n`` the sequence
    length.  Matches the paper's formula (Sec. IV) with the convention
    that ``u == 0`` (all-zero sequence) uses ``l = 0``.
    """
    if n <= 0:
        raise ValueError(f"sequence length must be positive, got {n}")
    if u < 0:
        raise ValueError(f"upper bound must be non-negative, got {u}")
    if u < n:
        return 0
    # floor(log2(u / n)) computed exactly in integer arithmetic.
    return (u // n).bit_length() - 1


def ef_lower_bits(n: int, u: int) -> int:
    """Total bits in the lower-bits section: ``n * l``."""
    return n * ef_num_lower_bits(n, u)


def ef_upper_bits(n: int, u: int) -> int:
    """Total bits in the upper-bits section: ``n + (u >> l)``.

    One stop bit per element plus one zero per unit of upper-value range.
    """
    l = ef_num_lower_bits(n, u)
    return n + (u >> l)


def ef_total_bits(n: int, u: int) -> int:
    """Upper bound on total EF bits, ``<= n * (2 + ceil(log2(u / n)))``."""
    return ef_lower_bits(n, u) + ef_upper_bits(n, u)


def plain_binary_bits(n: int, u: int) -> int:
    """Bits for the plain binary encoding, ``n * ceil(log2(u + 1))``."""
    if n < 0 or u < 0:
        raise ValueError("n and u must be non-negative")
    width = (u + 1 - 1).bit_length() if u > 0 else 0
    # ceil(log2(u+1)) == bit_length(u) for u >= 1, 0 for u == 0.
    return n * max(width, 1 if u > 0 else 0)
