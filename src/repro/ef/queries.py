"""Successor and intersection queries on EF sequences.

Vigna's quasi-succinct indices exist to answer exactly these queries:
``next_geq`` (the smallest element >= x, the inverted-index *skip*
operation) and list intersection via galloping.  The paper only needs
full-list decode for traversal, but adjacency membership and
intersections fall out of the representation for free — and they power
the triangle-counting and has-edge APIs on compressed graphs.

``ef_next_geq`` runs in O(log n) random accesses, each bounded by a
forward-pointer quantum; ``ef_intersect`` gallops the smaller list
through the larger one, which beats linear merge whenever the sizes
are skewed (the common case for adjacency lists).
"""

from __future__ import annotations

import numpy as np

from repro.ef.encoding import EFSequence, ef_decode_at

__all__ = ["ef_next_geq", "ef_contains", "ef_intersect"]


def ef_next_geq(seq: EFSequence, x: int) -> tuple[int, int]:
    """Smallest element >= x and its index, or (-1, n) when none exists.

    Binary search over random accesses; each probe is O(1) average via
    the sequence's forward pointers.
    """
    n = seq.n
    if x <= ef_decode_at(seq, 0):
        return ef_decode_at(seq, 0), 0
    last = ef_decode_at(seq, n - 1)
    if x > last:
        return -1, n
    lo, hi = 0, n - 1  # invariant: value(lo) < x <= value(hi)
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if ef_decode_at(seq, mid) >= x:
            hi = mid
        else:
            lo = mid
    return ef_decode_at(seq, hi), hi


def ef_contains(seq: EFSequence, x: int) -> bool:
    """Membership test in O(log n) probes."""
    value, _ = ef_next_geq(seq, x)
    return value == x


def ef_intersect(a: EFSequence, b: EFSequence) -> np.ndarray:
    """Sorted intersection of two EF sequences by galloping.

    The smaller sequence drives: for each of its elements, skip the
    larger sequence forward with ``next_geq``.  Duplicate elements
    (legal in EF, absent in adjacency lists) contribute once.
    """
    small, big = (a, b) if a.n <= b.n else (b, a)
    out: list[int] = []
    big_idx = 0
    prev = -1
    for i in range(small.n):
        value = ef_decode_at(small, i)
        if value == prev:
            continue
        prev = value
        hit, idx = _next_geq_from(big, value, big_idx)
        if hit == -1:
            break
        big_idx = idx
        if hit == value:
            out.append(value)
    return np.array(out, dtype=np.int64)


def _next_geq_from(seq: EFSequence, x: int, start: int) -> tuple[int, int]:
    """``next_geq`` restricted to indices >= start, galloping outward."""
    n = seq.n
    if start >= n:
        return -1, n
    if ef_decode_at(seq, start) >= x:
        return ef_decode_at(seq, start), start
    # Gallop to bracket x.
    step = 1
    lo = start
    while True:
        hi = lo + step
        if hi >= n - 1:
            hi = n - 1
            break
        if ef_decode_at(seq, hi) >= x:
            break
        lo = hi
        step *= 2
    if ef_decode_at(seq, hi) < x:
        return -1, n
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if ef_decode_at(seq, mid) >= x:
            hi = mid
        else:
            lo = mid
    return ef_decode_at(seq, hi), hi
