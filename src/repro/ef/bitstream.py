"""LSB-first bitstream reader/writer over uint8 buffers.

All Elias-Fano sections use the same convention (paper Fig. 3 footnote):
within a byte, bit 0 is the least significant bit, so a ``select`` that
walks the stream left-to-right logically walks each byte from LSB to MSB.

Two layers are provided:

* :class:`BitWriter` / :class:`BitReader` — incremental scalar access,
  used by encoders (compression is an offline step, Sec. VIII-F).
* :func:`pack_bits` / :func:`unpack_bits` — fully vectorized fixed-width
  field packing, used on the hot decode paths.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BitWriter", "BitReader", "pack_bits", "unpack_bits", "extract_fields"]


class BitWriter:
    """Append-only LSB-first bit buffer.

    Grows geometrically; call :meth:`getvalue` to obtain the packed
    ``uint8`` array (zero-padded to a whole byte).
    """

    def __init__(self, capacity_bits: int = 64) -> None:
        self._buf = np.zeros(max(1, (capacity_bits + 7) >> 3), dtype=np.uint8)
        self._nbits = 0

    def __len__(self) -> int:
        """Number of bits written so far."""
        return self._nbits

    def _ensure(self, extra_bits: int) -> None:
        need = (self._nbits + extra_bits + 7) >> 3
        if need > self._buf.shape[0]:
            new = np.zeros(max(need, 2 * self._buf.shape[0]), dtype=np.uint8)
            new[: self._buf.shape[0]] = self._buf
            self._buf = new

    def write_bit(self, bit: int) -> None:
        """Append a single bit."""
        self._ensure(1)
        if bit:
            self._buf[self._nbits >> 3] |= np.uint8(1 << (self._nbits & 7))
        self._nbits += 1

    def write_bits(self, value: int, width: int) -> None:
        """Append ``width`` bits of ``value``, LSB first."""
        if width < 0:
            raise ValueError(f"negative width: {width}")
        if value < 0:
            raise ValueError(f"negative value: {value}")
        if width and value >> width:
            raise ValueError(f"value {value} does not fit in {width} bits")
        self._ensure(width)
        nbits = self._nbits
        buf = self._buf
        for k in range(width):
            if (value >> k) & 1:
                buf[(nbits + k) >> 3] |= np.uint8(1 << ((nbits + k) & 7))
        self._nbits += width

    def write_unary(self, gap: int) -> None:
        """Append ``gap`` zero bits followed by a single one (stop) bit.

        This is the unary gap code of the EF upper-bits array.
        """
        if gap < 0:
            raise ValueError(f"negative unary gap: {gap}")
        self._ensure(gap + 1)
        self._nbits += gap  # zeros are already present in the buffer
        self.write_bit(1)

    def align_to_byte(self) -> None:
        """Zero-pad to the next byte boundary (sections are byte aligned)."""
        self._nbits = (self._nbits + 7) & ~7
        self._ensure(0)

    def getvalue(self) -> np.ndarray:
        """Packed uint8 array holding all written bits."""
        return self._buf[: (self._nbits + 7) >> 3].copy()


class BitReader:
    """Sequential LSB-first reader over a uint8 buffer."""

    def __init__(self, data: np.ndarray, start_bit: int = 0) -> None:
        self._data = np.asarray(data, dtype=np.uint8)
        if start_bit < 0:
            raise ValueError(f"negative start bit: {start_bit}")
        self._pos = start_bit

    @property
    def position(self) -> int:
        """Current bit offset."""
        return self._pos

    def seek(self, bit: int) -> None:
        """Jump to an absolute bit offset."""
        if bit < 0:
            raise ValueError(f"negative seek: {bit}")
        self._pos = bit

    def read_bit(self) -> int:
        """Read one bit and advance."""
        byte = self._data[self._pos >> 3]
        bit = (int(byte) >> (self._pos & 7)) & 1
        self._pos += 1
        return bit

    def read_bits(self, width: int) -> int:
        """Read a ``width``-bit little-endian field and advance."""
        value = 0
        for k in range(width):
            value |= self.read_bit() << k
        return value

    def read_unary(self) -> int:
        """Read zeros until a stop bit; return the zero count (the gap)."""
        gap = 0
        while self.read_bit() == 0:
            gap += 1
        return gap


def pack_bits(values: np.ndarray, width: int) -> np.ndarray:
    """Vectorized LSB-first packing of fixed-width fields into bytes.

    ``values[i]`` occupies bits ``[i*width, (i+1)*width)`` of the output.
    This builds the EF lower-bits section in one shot.
    """
    values = np.asarray(values, dtype=np.uint64)
    if width < 0:
        raise ValueError(f"negative width: {width}")
    n = values.shape[0]
    if width == 0 or n == 0:
        return np.zeros(0, dtype=np.uint8)
    if width < 64 and values.size and int(values.max()) >> width:
        raise ValueError(f"a value does not fit in {width} bits")
    total_bits = n * width
    # Expand every field into individual bits, then repack 8 at a time.
    shifts = np.arange(width, dtype=np.uint64)
    bits = ((values[:, None] >> shifts[None, :]) & np.uint64(1)).astype(np.uint8)
    flat = bits.reshape(-1)
    nbytes = (total_bits + 7) >> 3
    padded = np.zeros(nbytes * 8, dtype=np.uint8)
    padded[:total_bits] = flat
    byte_matrix = padded.reshape(nbytes, 8)
    weights = (1 << np.arange(8)).astype(np.uint16)
    return (byte_matrix * weights).sum(axis=1).astype(np.uint8)


def unpack_bits(data: np.ndarray, width: int, count: int, start_bit: int = 0) -> np.ndarray:
    """Vectorized inverse of :func:`pack_bits`.

    Reads ``count`` fields of ``width`` bits starting at bit offset
    ``start_bit``.  Used by the decode kernels to fetch lower bits for a
    whole warp of values at once.
    """
    data = np.asarray(data, dtype=np.uint8)
    if width < 0 or count < 0 or start_bit < 0:
        raise ValueError("width, count and start_bit must be non-negative")
    if width == 0:
        return np.zeros(count, dtype=np.uint64)
    positions = start_bit + np.arange(count, dtype=np.int64) * width
    return extract_fields(data, positions, width)


def extract_fields(data: np.ndarray, bit_positions: np.ndarray, width: int) -> np.ndarray:
    """Read a ``width``-bit field at each (arbitrary) bit position.

    This is the random-access primitive behind ``get_lower_half`` in
    Alg. 2: each thread fetches its own value's lower bits.  Handles
    fields straddling up to 8 byte boundaries (width <= 57 guaranteed by
    EF since l <= 57 for 64-bit universes; we support width <= 56 safely
    and fall back for wider fields).
    """
    data = np.asarray(data, dtype=np.uint8)
    bit_positions = np.asarray(bit_positions, dtype=np.int64)
    if width == 0:
        return np.zeros(bit_positions.shape[0], dtype=np.uint64)
    if width > 56:
        # Rare slow path: per-element scalar reads.
        out = np.empty(bit_positions.shape[0], dtype=np.uint64)
        for i, pos in enumerate(bit_positions):
            out[i] = BitReader(data, int(pos)).read_bits(width)
        return out
    byte_idx = bit_positions >> 3
    bit_off = (bit_positions & 7).astype(np.uint64)
    # Gather 8 consecutive bytes per field (little-endian window).
    offsets = np.arange(8, dtype=np.int64)
    gather_idx = byte_idx[:, None] + offsets[None, :]
    safe_idx = np.minimum(gather_idx, data.shape[0] - 1)
    window = data[safe_idx].astype(np.uint64)
    window[gather_idx >= data.shape[0]] = 0
    word = (window << (np.uint64(8) * offsets.astype(np.uint64))[None, :]).sum(
        axis=1, dtype=np.uint64
    )
    mask = np.uint64((1 << width) - 1)
    return (word >> bit_off) & mask
