"""Elias-Fano encode / decode of a single monotone sequence (Sec. IV).

A sequence ``0 <= x_0 <= ... <= x_{n-1} <= u`` is split per element into
``l = max(0, floor(log2(u/n)))`` lower bits (stored contiguously) and the
remaining upper bits (stored as unary-coded gaps with 1 as the stop bit).
Total storage is at most ``n * (2 + ceil(log2(u/n)))`` bits.

Encoders here are offline/CPU-side (Sec. VIII-F: compression is an
offline step); the vectorized batch decoder mirrors the GPU
decomposition and is what the simulator's kernels build on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import CorruptMetadataError, CorruptStreamError
from repro.ef.bitstream import pack_bits, unpack_bits
from repro.ef.bounds import ef_num_lower_bits, ef_upper_bits
from repro.ef.forward import DEFAULT_QUANTUM, ForwardPointers, build_forward_pointers
from repro.ef.select import select1_bitarray, select1_scalar
from repro.primitives.bitops import POPCOUNT_TABLE_I64, SELECT_IN_BYTE_TABLE_I64
from repro.primitives.scan import exclusive_scan
from repro.primitives.search import binsearch_maxle

__all__ = ["EFSequence", "ef_encode", "ef_decode", "ef_decode_at", "ef_decode_range"]


@dataclass(frozen=True)
class EFSequence:
    """One Elias-Fano-coded monotone sequence.

    Attributes
    ----------
    n:
        Number of elements.
    u:
        Upper bound used at encode time (the largest element by default).
    num_lower_bits:
        Per-element lower-bit width ``l``.
    lower:
        Byte-packed lower-bits section (LSB-first).
    upper:
        Byte-packed unary upper-bits section (LSB-first).
    forward:
        Forward pointers over ``upper`` (may have zero entries for short
        lists).
    """

    n: int
    u: int
    num_lower_bits: int
    lower: np.ndarray
    upper: np.ndarray
    forward: ForwardPointers = field(repr=False)

    @property
    def nbytes(self) -> int:
        """Total payload bytes (forward + lower + upper, byte aligned)."""
        return self.forward.nbytes + int(self.lower.shape[0]) + int(self.upper.shape[0])

    def to_blob(self) -> np.ndarray:
        """Serialize payload sections in EFG order: forward | lower | upper."""
        fwd_bytes = self.forward.values.astype("<u4").view(np.uint8)
        return np.concatenate([fwd_bytes, self.lower, self.upper])


def ef_encode(
    values: np.ndarray,
    u: int | None = None,
    quantum: int = DEFAULT_QUANTUM,
) -> EFSequence:
    """Encode a non-decreasing sequence of non-negative integers.

    Parameters
    ----------
    values:
        Sorted (non-decreasing) integers; duplicates are allowed by the
        encoding (adjacency lists are strictly increasing, but EF itself
        is defined for monotone sequences).
    u:
        Upper bound on the last value; defaults to ``values[-1]``.
    quantum:
        Forward-pointer spacing ``k`` (paper default 512).
    """
    values = np.asarray(values, dtype=np.int64)
    if values.ndim != 1 or values.shape[0] == 0:
        raise ValueError("ef_encode requires a non-empty 1-D sequence")
    if values[0] < 0:
        raise ValueError("ef_encode requires non-negative values")
    if np.any(np.diff(values) < 0):
        raise ValueError("ef_encode requires a non-decreasing sequence")
    n = int(values.shape[0])
    last = int(values[-1])
    if u is None:
        u = last
    elif u < last:
        raise ValueError(f"upper bound {u} below the last value {last}")

    l = ef_num_lower_bits(n, u)
    low_mask = np.int64((1 << l) - 1)
    lower = pack_bits((values & low_mask).astype(np.uint64), l)

    highs = (values >> np.int64(l)).astype(np.int64)
    total_upper_bits = ef_upper_bits(n, u)
    # Stop bit for element i sits at bit position highs[i] + i.
    stop_positions = highs + np.arange(n, dtype=np.int64)
    upper = np.zeros((total_upper_bits + 7) >> 3, dtype=np.uint8)
    np.bitwise_or.at(
        upper,
        stop_positions >> 3,
        (np.uint8(1) << (stop_positions & 7).astype(np.uint8)),
    )
    forward = build_forward_pointers(upper, n, quantum)
    return EFSequence(
        n=n, u=int(u), num_lower_bits=l, lower=lower, upper=upper, forward=forward
    )


def _check_sequence(seq: EFSequence) -> None:
    """Cheap metadata guard for the random-access decoders.

    Rejects parameter corruption (``l`` past 64, a lower-bits section
    too short for ``n`` fields) with a typed error before any gather can
    read out of bounds or feed numpy a negative repeat count.
    """
    l = int(seq.num_lower_bits)
    if not 0 <= l <= 64:
        raise CorruptMetadataError(
            f"num_lower_bits {l} out of range [0, 64]", fmt="ef"
        )
    need_lower = (seq.n * l + 7) >> 3
    if int(seq.lower.shape[0]) < need_lower:
        raise CorruptMetadataError(
            f"lower section holds {int(seq.lower.shape[0])} bytes, "
            f"{need_lower} needed for {seq.n} fields of {l} bits",
            fmt="ef",
        )


def ef_decode(seq: EFSequence) -> np.ndarray:
    """Decode the full sequence with the batched select decomposition."""
    return ef_decode_range(seq, 0, seq.n)


def ef_decode_at(seq: EFSequence, i: int) -> int:
    """Random access to element ``i`` using forward pointers.

    ``x_i = ((select1(i) - i) << l) | lower[i]`` — the forward pointer
    bounds the select scan to at most one quantum of stop bits.
    """
    if not 0 <= i < seq.n:
        raise IndexError(f"index {i} out of range for sequence of {seq.n}")
    _check_sequence(seq)
    anchor_elem, anchor_bit = seq.forward.floor_anchor(i)
    try:
        if anchor_elem == i:
            select_pos = anchor_bit
        elif anchor_elem < 0:
            select_pos = select1_scalar(seq.upper, i)
        else:
            select_pos = select1_scalar(
                seq.upper, i - anchor_elem - 1, start_bit=anchor_bit + 1
            )
    except IndexError as exc:
        raise CorruptStreamError(str(exc), fmt="ef") from exc
    upper_half = select_pos - i
    lower_half = int(
        unpack_bits(seq.lower, seq.num_lower_bits, 1, start_bit=i * seq.num_lower_bits)[0]
    )
    return (upper_half << seq.num_lower_bits) | lower_half


def ef_decode_range(seq: EFSequence, a: int, b: int) -> np.ndarray:
    """Decode elements ``[a, b)`` scanning only the covering byte range.

    This is the partial-list problem of Sec. VI-C: locate the closest
    forward pointer preceding ``a`` and the closest covering pointer at
    or after ``b - 1``, then run the popcount/scan/binsearch/select
    pipeline over just the bytes in between.
    """
    if not 0 <= a <= b <= seq.n:
        raise IndexError(f"range [{a}, {b}) invalid for sequence of {seq.n}")
    if a == b:
        return np.empty(0, dtype=np.int64)
    _check_sequence(seq)

    # --- bound the upper-bits scan with forward pointers (Fig. 6) ---
    anchor_elem, anchor_bit = seq.forward.floor_anchor(a)
    if anchor_elem >= a:
        # floor_anchor anchors j*k-1 <= a only when (a+1) >= j*k; it can
        # equal a itself, in which case start the scan at its stop bit.
        start_bit = anchor_bit
        base_rank = anchor_elem  # set bits strictly before start_bit
    elif anchor_elem < 0:
        start_bit = 0
        base_rank = 0
    else:
        start_bit = anchor_bit + 1
        base_rank = anchor_elem + 1

    end_elem, end_bit = seq.forward.ceil_anchor(b - 1, seq.n)
    if end_elem < 0:
        stop_bit = seq.upper.shape[0] * 8
    else:
        stop_bit = end_bit + 1

    first_byte = start_bit >> 3
    last_byte = min((stop_bit + 7) >> 3, seq.upper.shape[0])
    window = seq.upper[first_byte:last_byte]

    # Bits before start_bit in the first byte must not count towards the
    # ranks.  Only that one byte needs masking, so pass a patched first
    # byte instead of copying the whole window (hot path: every partial
    # decode of a hub list would otherwise copy up to a quantum of
    # bytes just to mask three bits).
    lead = start_bit & 7
    first_value = np.uint8(int(window[0]) & ((0xFF << lead) & 0xFF)) if lead else None

    # Ranks of the wanted elements relative to the window.
    want = np.arange(a, b, dtype=np.int64)
    rel = want - base_rank
    select_pos = (
        _batched_select_window(window, rel, first_value) + first_byte * 8
    )

    upper_half = select_pos - want
    lower_half = unpack_bits(
        seq.lower, seq.num_lower_bits, b - a, start_bit=a * seq.num_lower_bits
    ).astype(np.int64)
    return (upper_half << np.int64(seq.num_lower_bits)) | lower_half


def _batched_select_window(
    window: np.ndarray,
    ranks: np.ndarray,
    first_byte_value: np.uint8 | None = None,
) -> np.ndarray:
    """popcount + exclusive scan + binsearch + select1_byte over a window.

    ``first_byte_value``, when given, stands in for ``window[0]`` — the
    caller's way of masking leading bits without copying the window.
    """
    popc = POPCOUNT_TABLE_I64[window]
    if first_byte_value is not None and window.shape[0]:
        popc[0] = POPCOUNT_TABLE_I64[first_byte_value]
    exsum, total = exclusive_scan(popc)
    if ranks.size and ranks.max() >= total:
        # Fewer stop bits in the covering window than the requested
        # element ranks imply — missing or truncated upper bits.
        raise CorruptStreamError(
            "select rank beyond set bits in window", fmt="ef"
        )
    target_byte = binsearch_maxle(exsum, ranks)
    target_value = window[target_byte]
    if first_byte_value is not None:
        target_value[target_byte == 0] = first_byte_value
    in_rank = ranks - exsum[target_byte]
    in_pos = SELECT_IN_BYTE_TABLE_I64[target_value, in_rank]
    return target_byte * 8 + in_pos
