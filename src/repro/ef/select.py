"""``select1`` over packed bit arrays.

``select1(i)`` returns the position of the i-th (0-indexed) set bit of a
bitstream — the foundational operation of EF decoding (Sec. IV-A).  The
GPU kernels never call the scalar version in a loop; they batch it via
popcount + scan + binsearch (:func:`select1_bitarray`), exactly the
decomposition of Alg. 2.
"""

from __future__ import annotations

import numpy as np

from repro.primitives.bitops import (
    POPCOUNT_TABLE,
    POPCOUNT_TABLE_I64,
    SELECT_IN_BYTE_TABLE,
    SELECT_IN_BYTE_TABLE_I64,
)
from repro.primitives.scan import exclusive_scan
from repro.primitives.search import binsearch_maxle

__all__ = ["select1_scalar", "select1_bitarray", "rank1_bitarray"]


def select1_scalar(data: np.ndarray, i: int, start_bit: int = 0) -> int:
    """Position (relative to bit 0 of ``data``) of the i-th set bit.

    Sequential reference implementation used for validation and by the
    CPU-side encoders.  ``start_bit`` lets callers resume from a forward
    pointer boundary.

    Raises
    ------
    IndexError
        If the stream has fewer than ``i + 1`` set bits after
        ``start_bit``.
    """
    if i < 0:
        raise ValueError(f"negative select index: {i}")
    data = np.asarray(data, dtype=np.uint8)
    remaining = i
    pos = start_bit
    nbits = data.shape[0] * 8
    # Skip whole bytes using the popcount LUT.
    while pos < nbits:
        byte = int(data[pos >> 3])
        if pos & 7:
            byte >>= pos & 7
            width = 8 - (pos & 7)
        else:
            width = 8
        count = int(POPCOUNT_TABLE[byte])
        if count <= remaining:
            remaining -= count
            pos += width
            continue
        in_byte = int(SELECT_IN_BYTE_TABLE[byte, remaining])
        return pos + in_byte
    raise IndexError(f"select1({i}): not enough set bits")


def select1_bitarray(data: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Batched ``select1`` over one bit array — the GPU decomposition.

    Performs popcount per byte, an exclusive scan, then per query a
    ``binsearch_maxle`` into the scan plus a ``select1_byte`` LUT probe.
    This is Alg. 2 applied to the full array at once (no tiling); the
    tiled/kernel version lives in :mod:`repro.core.kernels`.
    """
    data = np.asarray(data, dtype=np.uint8)
    indices = np.asarray(indices, dtype=np.int64)
    if indices.size == 0:
        return np.empty(0, dtype=np.int64)
    if indices.min() < 0:
        raise ValueError("negative select index")
    popc = POPCOUNT_TABLE_I64[data]
    exsum, total = exclusive_scan(popc)
    if indices.max() >= total:
        raise IndexError("select index beyond number of set bits")
    target_byte = binsearch_maxle(exsum, indices)
    in_byte_rank = indices - exsum[target_byte]
    in_byte_pos = SELECT_IN_BYTE_TABLE_I64[data[target_byte], in_byte_rank]
    return target_byte * 8 + in_byte_pos


def rank1_bitarray(data: np.ndarray, pos: int) -> int:
    """Number of set bits strictly before bit position ``pos``."""
    if pos < 0:
        raise ValueError(f"negative position: {pos}")
    data = np.asarray(data, dtype=np.uint8)
    pos = min(pos, data.shape[0] * 8)
    full_bytes = pos >> 3
    count = int(POPCOUNT_TABLE[data[:full_bytes]].sum()) if full_bytes else 0
    rem = pos & 7
    if rem:
        partial = int(data[full_bytes]) & ((1 << rem) - 1)
        count += int(POPCOUNT_TABLE[partial])
    return count
