"""Mergeable log-bucketed quantile sketch (DDSketch-style).

Serving percentiles (p50/p95/p99 latency, wave width, queue wait) must
be computed over unbounded streams in bounded memory, be mergeable
across shards, and — in this codebase — be *byte-deterministic*.  The
DDSketch construction (Masson, Rim & Lee, VLDB'19) gives all three:
values are counted in logarithmically-spaced buckets, so every bucket's
representative value is within a fixed **relative** error of anything
the bucket holds.

Guarantee
---------
With relative accuracy ``alpha`` the sketch uses ``gamma = (1 + alpha)
/ (1 - alpha)`` and maps a value ``v > 0`` to bucket ``i = ceil(log(v)
/ log(gamma))``, i.e. the unique ``i`` with ``gamma**(i-1) < v <=
gamma**i``.  The bucket's representative is the harmonic-style midpoint
``m_i = 2 * gamma**i / (gamma + 1)``.  For any ``u`` in the bucket::

    m_i / u  >=  m_i / gamma**i      = 2 / (gamma + 1) = 1 - alpha
    m_i / u  <=  m_i / gamma**(i-1)  = 2 * gamma / (gamma + 1) = 1 + alpha

so ``|m_i - u| <= alpha * u`` — an exact relative-error bound, not an
approximation.  :meth:`QuantileSketch.quantile` returns the
representative of the bucket holding the order statistic of rank
``ceil(q * (n - 1))`` (0-indexed — the same element
``numpy.quantile(..., method="higher")`` returns), hence::

    |sketch.quantile(q) - np.quantile(xs, q, method="higher")|
        <= alpha * np.quantile(xs, q, method="higher")

for any input distribution, adversarial or not (property-tested in
``tests/property/test_sketch_property.py``).

Merging adds bucket counts index-wise, which is associative and
commutative and preserves the bound, because bucket indices depend only
on ``alpha`` — two sketches with equal ``alpha`` share a bucket space.
The ``sum`` moment is carried as an exact Shewchuk expansion (plain
float ``+=`` is not associative), so even the serialized rounded float
is merge-order-free.

Serialization is a canonical little-endian byte string (buckets sorted
by index), so equal sketches — including merge results computed in any
order — dump byte-identically, and ``loads(dumps(s)).to_bytes() ==
s.to_bytes()`` exactly.
"""

from __future__ import annotations

import math
import struct

__all__ = ["QuantileSketch"]

_MAGIC = b"RQSK"
_VERSION = 1
_HEADER = struct.Struct("<4sHd4Q3d")  # magic, ver, alpha, count, zero,
#                                       n_buckets, pad, min, max, sum
_BUCKET = struct.Struct("<qQ")  # bucket index, count


def _exact_add(partials: list[float], x: float) -> None:
    """Shewchuk grow-expansion (``math.fsum``'s core), in place.

    Keeps ``partials`` an exact non-overlapping representation of the
    running sum, so the total — and its correctly-rounded float — is
    independent of accumulation order.  That is what makes ``merge``
    *byte*-associative: plain float ``+=`` is not associative, and the
    serialized ``sum`` field would otherwise depend on merge order.
    """
    i = 0
    for y in partials:
        if abs(x) < abs(y):
            x, y = y, x
        hi = x + y
        lo = y - (hi - x)
        if lo:
            partials[i] = lo
            i += 1
        x = hi
    partials[i:] = [x]


class QuantileSketch:
    """Bounded-memory quantile estimator with relative accuracy ``alpha``.

    Only non-negative values are accepted (latencies, widths, byte
    counts — everything this repo measures).  Zeros are counted in a
    dedicated bucket and returned exactly.
    """

    __slots__ = ("alpha", "gamma", "_log_gamma", "_buckets",
                 "zero_count", "count", "_sum_partials", "min", "max")

    def __init__(self, relative_accuracy: float = 0.01) -> None:
        if not (0.0 < relative_accuracy < 1.0):
            raise ValueError(
                f"relative_accuracy must be in (0, 1), "
                f"got {relative_accuracy}"
            )
        self.alpha = float(relative_accuracy)
        self.gamma = (1.0 + self.alpha) / (1.0 - self.alpha)
        self._log_gamma = math.log(self.gamma)
        self._buckets: dict[int, int] = {}
        self.zero_count = 0
        self.count = 0
        self._sum_partials: list[float] = []
        self.min = math.inf
        self.max = 0.0

    # -- ingest -------------------------------------------------------

    def bucket_index(self, value: float) -> int:
        """The unique ``i`` with ``gamma**(i-1) < value <= gamma**i``."""
        i = math.ceil(math.log(value) / self._log_gamma)
        # log() slop at exact powers of gamma can land one bucket off;
        # nudge so the invariant above holds exactly in float space.
        if self.gamma ** (i - 1) >= value:
            i -= 1
        elif self.gamma ** i < value:
            i += 1
        return i

    def add(self, value: float, count: int = 1) -> None:
        """Record ``count`` observations of ``value`` (``value >= 0``)."""
        value = float(value)
        if value < 0.0:
            raise ValueError(f"sketch accepts only values >= 0, got {value}")
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        if value == 0.0:
            self.zero_count += count
        else:
            i = self.bucket_index(value)
            self._buckets[i] = self._buckets.get(i, 0) + count
        self.count += count
        _exact_add(self._sum_partials, value * count)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    # -- queries ------------------------------------------------------

    @property
    def num_buckets(self) -> int:
        return len(self._buckets) + (1 if self.zero_count else 0)

    def bucket_value(self, index: int) -> float:
        """Representative value of bucket ``index`` (see module proof)."""
        return 2.0 * self.gamma ** index / (self.gamma + 1.0)

    def quantile(self, q: float) -> float:
        """Estimate of the order statistic at rank ``ceil(q * (n-1))``.

        Matches ``numpy.quantile(xs, q, method="higher")`` within
        relative error ``alpha`` (exactly for zeros).
        """
        if not (0.0 <= q <= 1.0):
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.count == 0:
            raise ValueError("quantile of an empty sketch")
        rank = math.ceil(q * (self.count - 1))  # 0-indexed
        if rank < self.zero_count:
            return 0.0
        seen = self.zero_count
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if rank < seen:
                return self.bucket_value(index)
        return self.bucket_value(max(self._buckets))  # q == 1 slop

    @property
    def sum(self) -> float:
        """Correctly-rounded total (exact, accumulation-order-free)."""
        return math.fsum(self._sum_partials)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def summary(self, qs: tuple[float, ...] = (0.5, 0.95, 0.99)) -> dict:
        """Numeric-only summary for a metrics section (diffable)."""
        out = {
            "count": float(self.count),
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max,
            "relative_accuracy": self.alpha,
        }
        for q in qs:
            out[f"p{q * 100:g}".replace(".", "_")] = (
                self.quantile(q) if self.count else 0.0
            )
        return out

    # -- merge --------------------------------------------------------

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """A new sketch holding both streams (associative, commutative).

        Requires equal ``relative_accuracy``: bucket indices are only
        comparable within one ``gamma``.
        """
        if not isinstance(other, QuantileSketch):
            raise TypeError(f"cannot merge with {type(other).__name__}")
        if other.alpha != self.alpha:
            raise ValueError(
                f"cannot merge sketches with different accuracy: "
                f"{self.alpha} != {other.alpha}"
            )
        out = QuantileSketch(relative_accuracy=self.alpha)
        out._buckets = dict(self._buckets)
        for index, n in other._buckets.items():
            out._buckets[index] = out._buckets.get(index, 0) + n
        out.zero_count = self.zero_count + other.zero_count
        out.count = self.count + other.count
        out._sum_partials = list(self._sum_partials)
        for part in other._sum_partials:
            _exact_add(out._sum_partials, part)
        out.min = min(self.min, other.min)
        out.max = max(self.max, other.max)
        return out

    # -- serialization ------------------------------------------------

    def to_bytes(self) -> bytes:
        """Canonical dump: header + buckets sorted by index.

        Equal sketches serialize byte-identically regardless of
        insertion or merge order (bucket dicts are canonicalized by
        sorting).
        """
        parts = [_HEADER.pack(
            _MAGIC, _VERSION, self.alpha,
            self.count, self.zero_count, len(self._buckets), 0,
            self.min if self.count else 0.0, self.max, self.sum,
        )]
        for index in sorted(self._buckets):
            parts.append(_BUCKET.pack(index, self._buckets[index]))
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "QuantileSketch":
        if len(blob) < _HEADER.size:
            raise ValueError(f"sketch blob truncated: {len(blob)} bytes")
        (magic, version, alpha, count, zero_count, n_buckets, _pad,
         vmin, vmax, vsum) = _HEADER.unpack_from(blob, 0)
        if magic != _MAGIC:
            raise ValueError(f"bad sketch magic {magic!r}")
        if version != _VERSION:
            raise ValueError(f"unsupported sketch version {version}")
        expected = _HEADER.size + n_buckets * _BUCKET.size
        if len(blob) != expected:
            raise ValueError(
                f"sketch blob size {len(blob)} != expected {expected}"
            )
        out = cls(relative_accuracy=alpha)
        offset = _HEADER.size
        prev = None
        for _ in range(n_buckets):
            index, n = _BUCKET.unpack_from(blob, offset)
            offset += _BUCKET.size
            if prev is not None and index <= prev:
                raise ValueError("sketch buckets not strictly ascending")
            prev = index
            out._buckets[index] = n
        out.zero_count = zero_count
        out.count = count
        out._sum_partials = [vsum] if vsum else []
        out.min = vmin if count else math.inf
        out.max = vmax
        return out

    def __eq__(self, other) -> bool:
        if not isinstance(other, QuantileSketch):
            return NotImplemented
        return self.to_bytes() == other.to_bytes()

    def __repr__(self) -> str:
        return (
            f"QuantileSketch(alpha={self.alpha}, count={self.count}, "
            f"buckets={self.num_buckets})"
        )
