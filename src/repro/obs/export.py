"""Perfetto/chrome-trace export: nested spans and counter tracks.

Extends the flat kernel timeline of :mod:`repro.gpusim.trace` with the
two things a flat trace cannot show:

* the **span hierarchy** (run -> algorithm -> level -> kernel) as
  nested complete events on a dedicated track, so one can click a slow
  level and see exactly which launches and how many bytes it contains;
* **counter tracks** sampled over simulated time — frontier size,
  cumulative bytes moved, decoded-list-cache hit rate — the continuous
  signals behind the paper's per-level plots.

Everything is keyed to the simulated clock (microsecond ``ts`` like an
``nsys`` export), so traces from identical runs are identical files.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.gpusim.engine import SimEngine

__all__ = [
    "KERNEL_PID",
    "SPAN_PID",
    "span_events",
    "counter_events",
    "write_perfetto_trace",
]

#: Process id of the flat per-kernel timeline (one track per kernel name).
KERNEL_PID = 0

#: Process id of the nested span hierarchy (single track, events nest
#: by time containment, exactly how Perfetto renders call stacks).
SPAN_PID = 1


def _jsonable(value):
    """Coerce numpy scalars/arrays and other oddballs to JSON types."""
    if isinstance(value, (str, bool, int, float)) or value is None:
        return value
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    if hasattr(value, "tolist"):  # numpy array
        return value.tolist()
    return str(value)


def span_events(engine: "SimEngine") -> list[dict]:
    """Nested complete events for the whole span tree.

    Spans still open at export time (the root "run" span) are closed at
    the engine's current simulated time.  All spans share one track;
    Perfetto nests same-track events by interval containment, which the
    hierarchical timestamps guarantee.
    """
    root = engine.tracer.root
    if root is None:
        return []
    now = engine.elapsed_seconds
    events: list[dict] = []
    for depth, span in root.walk():
        end = span.end_s if span.end_s is not None else now
        args = {k: _jsonable(v) for k, v in sorted(span.attrs.items())}
        args["kind"] = span.kind
        args["depth"] = depth
        events.append(
            {
                "name": span.name,
                "cat": span.kind,
                "ph": "X",
                "ts": span.start_s * 1e6,
                "dur": (end - span.start_s) * 1e6,
                "pid": SPAN_PID,
                "tid": 0,
                "args": args,
            }
        )
    return events


def counter_events(engine: "SimEngine") -> list[dict]:
    """Counter-track events: explicit samples plus derived byte totals.

    * every series recorded via :meth:`SimEngine.sample` (frontier
      size, cache hit rate, ...) becomes its own counter track;
    * ``cumulative_bytes`` is derived from the launch records — total
      device+host bytes moved, sampled at each launch completion — so
      any run with at least one launch gets at least one counter track;
    * one ``bytes:<array>`` track per attributed array (cumulative
      moved bytes, sampled when a launch touched that array) — the
      per-data-structure traffic curves behind the paper's Fig. 1
      regions.
    """
    events: list[dict] = []

    def emit(name: str, t_s: float, value: float) -> None:
        events.append(
            {
                "name": name,
                "ph": "C",
                "ts": t_s * 1e6,
                "pid": KERNEL_PID,
                "tid": 0,
                "args": {"value": _jsonable(value)},
            }
        )

    for name, series in sorted(engine.series.items()):
        for t_s, value in series:
            emit(name, t_s, value)
    cumulative = 0.0
    per_array: dict[str, float] = {}
    for record in engine.records:
        cumulative += record.cost.device_bytes + record.cost.host_bytes
        end = record.start_s + record.seconds
        emit("cumulative_bytes", end, cumulative)
        for array in sorted(record.cost.traffic):
            traffic = record.cost.traffic[array]
            total = per_array.get(array, 0.0) + traffic.moved_bytes
            per_array[array] = total
            emit(f"bytes:{array}", end, total)
    return events


def write_perfetto_trace(engine: "SimEngine", path: str) -> None:
    """Write the full trace: kernel tracks + span hierarchy + counters."""
    from repro.gpusim.trace import timeline_events

    payload = {
        "traceEvents": (
            timeline_events(engine, pid=KERNEL_PID)
            + span_events(engine)
            + counter_events(engine)
        ),
        "displayTimeUnit": "ms",
        "metadata": {"device": engine.device.name, "exporter": "repro.obs"},
    }
    with open(path, "w") as fh:
        json.dump(payload, fh)
