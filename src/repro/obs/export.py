"""Perfetto/chrome-trace export: nested spans and counter tracks.

Extends the flat kernel timeline of :mod:`repro.gpusim.trace` with the
two things a flat trace cannot show:

* the **span hierarchy** (run -> algorithm -> level -> kernel) as
  nested complete events on a dedicated track, so one can click a slow
  level and see exactly which launches and how many bytes it contains;
* **counter tracks** sampled over simulated time — frontier size,
  cumulative bytes moved, decoded-list-cache hit rate — the continuous
  signals behind the paper's per-level plots.

Everything is keyed to the simulated clock (microsecond ``ts`` like an
``nsys`` export), so traces from identical runs are identical files.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.gpusim.engine import SimEngine

__all__ = [
    "KERNEL_PID",
    "SPAN_PID",
    "CRITPATH_PID",
    "span_events",
    "counter_events",
    "critpath_events",
    "write_perfetto_trace",
]

#: Process id of the flat per-kernel timeline (one track per kernel name).
KERNEL_PID = 0

#: Process id of the nested span hierarchy (single track, events nest
#: by time containment, exactly how Perfetto renders call stacks).
SPAN_PID = 1

#: Process id of the critical-path view: on-path segments on track 0,
#: off-path (hidden-under-overlap) segments dimmed on track 1.
CRITPATH_PID = 2


def _jsonable(value):
    """Coerce numpy scalars/arrays and other oddballs to JSON types."""
    if isinstance(value, (str, bool, int, float)) or value is None:
        return value
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    if hasattr(value, "tolist"):  # numpy array
        return value.tolist()
    return str(value)


def span_events(engine: "SimEngine") -> list[dict]:
    """Nested complete events for the whole span tree.

    Spans still open at export time (the root "run" span) are closed at
    the engine's current simulated time.  All spans share one track;
    Perfetto nests same-track events by interval containment, which the
    hierarchical timestamps guarantee.
    """
    root = engine.tracer.root
    if root is None:
        return []
    now = engine.elapsed_seconds
    events: list[dict] = []
    for depth, span in root.walk():
        end = span.end_s if span.end_s is not None else now
        args = {k: _jsonable(v) for k, v in sorted(span.attrs.items())}
        args["kind"] = span.kind
        args["depth"] = depth
        events.append(
            {
                "name": span.name,
                "cat": span.kind,
                "ph": "X",
                "ts": span.start_s * 1e6,
                "dur": (end - span.start_s) * 1e6,
                "pid": SPAN_PID,
                "tid": 0,
                "args": args,
            }
        )
    return events


def counter_events(engine: "SimEngine") -> list[dict]:
    """Counter-track events: explicit samples plus derived byte totals.

    * every series recorded via :meth:`SimEngine.sample` (frontier
      size, cache hit rate, ...) becomes its own counter track;
    * ``cumulative_bytes`` is derived from the launch records — total
      device+host bytes moved, sampled at each launch completion — so
      any run with at least one launch gets at least one counter track;
    * one ``bytes:<array>`` track per attributed array (cumulative
      moved bytes, sampled when a launch touched that array) — the
      per-data-structure traffic curves behind the paper's Fig. 1
      regions.
    """
    events: list[dict] = []

    def emit(name: str, t_s: float, value: float) -> None:
        events.append(
            {
                "name": name,
                "ph": "C",
                "ts": t_s * 1e6,
                "pid": KERNEL_PID,
                "tid": 0,
                "args": {"value": _jsonable(value)},
            }
        )

    for name, series in sorted(engine.series.items()):
        for t_s, value in series:
            emit(name, t_s, value)
    cumulative = 0.0
    per_array: dict[str, float] = {}
    for record in engine.records:
        cumulative += record.cost.device_bytes + record.cost.host_bytes
        end = record.start_s + record.seconds
        emit("cumulative_bytes", end, cumulative)
        for array in sorted(record.cost.traffic):
            traffic = record.cost.traffic[array]
            total = per_array.get(array, 0.0) + traffic.moved_bytes
            per_array[array] = total
            emit(f"bytes:{array}", end, total)
    return events


def critpath_events(path) -> list[dict]:
    """Critical-path highlight events from an extracted path.

    ``path`` is a :class:`repro.obs.critpath.CriticalPath`.  On-path
    segments render on their own track; segments hidden under overlap
    land on a second, grey-dimmed track with their slack in the args —
    the at-a-glance "where would an optimisation actually move the
    finish line" view next to the raw timeline.
    """
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": CRITPATH_PID,
            "tid": 0,
            "args": {"name": "critical path"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": CRITPATH_PID,
            "tid": 0,
            "args": {"name": "on path"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": CRITPATH_PID,
            "tid": 1,
            "args": {"name": "off path (hidden by overlap)"},
        },
    ]
    for seg in path.segments:
        event = {
            "name": f"{seg.phase}:{seg.level_name}" if seg.level_name
            else seg.phase,
            "cat": "critpath",
            "ph": "X",
            "ts": seg.start_s * 1e6,
            "dur": seg.seconds * 1e6,
            "pid": CRITPATH_PID,
            "tid": 0 if seg.on_path else 1,
            "args": {
                "phase": seg.phase,
                "level": seg.level,
                "kernel": seg.kernel,
                "array": seg.array,
                "tier": seg.tier,
                "on_path": seg.on_path,
                "slack_us": seg.slack_seconds * 1e6,
            },
        }
        if not seg.on_path:
            event["cname"] = "grey"
        events.append(event)
    return events


def write_perfetto_trace(engine: "SimEngine", path: str) -> None:
    """Write the full trace: kernel tracks + span hierarchy + counters
    + the critical-path highlight track."""
    from repro.gpusim.trace import timeline_events
    from repro.obs.critpath import extract_critical_path

    payload = {
        "traceEvents": (
            timeline_events(engine, pid=KERNEL_PID)
            + span_events(engine)
            + counter_events(engine)
            + critpath_events(extract_critical_path(engine))
        ),
        "displayTimeUnit": "ms",
        "metadata": {"device": engine.device.name, "exporter": "repro.obs"},
    }
    with open(path, "w") as fh:
        json.dump(payload, fh)
