"""Observability: spans, metrics, roofline analysis, run comparison.

The telemetry layer of the simulator.  :mod:`repro.obs.spans` and
:mod:`repro.obs.metrics` are dependency-free building blocks consumed
by :class:`~repro.gpusim.engine.SimEngine` (every engine carries a
tracer and a metrics registry); the analysis and export layers sit on
top:

* :mod:`repro.obs.counters` — emulated hardware counters (sectors,
  coalescing and warp efficiency) and the per-kernel x per-array
  traffic attribution tables;
* :mod:`repro.obs.roofline` — per-kernel / per-level achieved-vs-peak
  bandwidth and the memory/pcie/compute/latency bound labels, refined
  with the array responsible for the binding term;
* :mod:`repro.obs.export` — Perfetto traces with nested spans and
  counter tracks (one per attributed array);
* :mod:`repro.obs.compare` — diff two metrics dumps, gate regressions;
* :mod:`repro.obs.timeseries` / :mod:`repro.obs.sketch` /
  :mod:`repro.obs.slo` — the service-side streaming layer: ring-buffer
  time-series on the simulated clock, mergeable quantile sketches with
  a proven relative-error bound, and SLO burn-rate evaluation with a
  canonical JSONL event log.

Only the building blocks are re-exported here: the heavier layers
import the engine and are loaded as submodules on demand, keeping the
``engine -> obs`` import edge acyclic.
"""

from repro.obs.metrics import (
    METRICS_SCHEMA,
    SUPPORTED_SCHEMAS,
    Histogram,
    MetricsRegistry,
    git_sha,
)
from repro.obs.sketch import QuantileSketch
from repro.obs.slo import EventLog, SLOEngine, SLOSpec
from repro.obs.spans import Span, Tracer, aggregate_kernel_costs
from repro.obs.timeseries import TimeSeries

__all__ = [
    "METRICS_SCHEMA",
    "SUPPORTED_SCHEMAS",
    "EventLog",
    "Histogram",
    "MetricsRegistry",
    "QuantileSketch",
    "SLOEngine",
    "SLOSpec",
    "Span",
    "TimeSeries",
    "Tracer",
    "aggregate_kernel_costs",
    "git_sha",
]
