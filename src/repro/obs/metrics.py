"""Metrics registry and the stable run-metrics JSON schema.

The engine's ad-hoc ``record_counter`` strings grew organically; this
module replaces them with a typed registry — counters (monotonic
accumulators), gauges (last-value), and histograms (power-of-two
buckets, the right shape for frontier sizes) — while
:meth:`~repro.gpusim.engine.SimEngine.record_counter` survives as a
compatibility shim that forwards into the registry.

:func:`run_metrics` serialises one finished run into a versioned,
deterministically ordered dict: totals, per-kernel rows, the registry
contents, and the roofline analysis.  Two identical runs produce
byte-identical dumps (no wall-clock anywhere), which is what lets
``repro compare`` gate perf regressions in CI.
"""

from __future__ import annotations

import functools
import json
import math
import subprocess
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.gpusim.engine import SimEngine

__all__ = [
    "METRICS_SCHEMA",
    "SUPPORTED_SCHEMAS",
    "Histogram",
    "MetricsRegistry",
    "bytes_per_edge",
    "git_sha",
    "run_metrics",
    "dump_metrics",
]

#: Version tag of the metrics JSON layout.  Bump on breaking changes;
#: ``repro compare`` refuses to diff dumps with unknown schemas.
#: ``/2`` adds per-array attribution (``arrays``), emulated hardware
#: counters (``hw_counters``), sector totals, ``bound_array`` roofline
#: labels, and self-describing ``meta.git_sha`` / ``meta.schema_versions``
#: stamps.  ``/1`` dumps remain readable (see :data:`SUPPORTED_SCHEMAS`).
METRICS_SCHEMA = "repro.metrics/2"

#: Schemas the readers (``load_metrics`` / ``repro compare``) accept.
#: ``/2`` is a superset of ``/1`` — every v1 key survives unchanged —
#: so old dumps stay loadable and comparable key-by-key.
SUPPORTED_SCHEMAS = ("repro.metrics/1", "repro.metrics/2")


@functools.lru_cache(maxsize=1)
def git_sha() -> str:
    """Current repository commit (short), or ``"unknown"`` outside git.

    Cached for the process lifetime: the working tree cannot change
    mid-run, and caching keeps repeated :func:`run_metrics` calls in
    one process byte-identical and subprocess-free.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


class Histogram:
    """Power-of-two bucketed histogram (plus count/sum/min/max).

    A value lands in the bucket whose upper bound is the smallest power
    of two >= value (bucket "0" holds exact zeros).  Geometric buckets
    suit the heavy-tailed distributions we record — frontier sizes span
    six orders of magnitude within one BFS.
    """

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._buckets: dict[int, int] = {}  # exponent -> count; -1 = zeros

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        if value < 0:
            raise ValueError(f"histogram values must be >= 0, got {value}")
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        exp = -1 if value == 0 else max(0, math.ceil(math.log2(value)))
        self._buckets[exp] = self._buckets.get(exp, 0) + 1

    @property
    def mean(self) -> float:
        """Mean of the observed samples (0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        """Stable JSON form; bucket keys are the upper bounds."""
        buckets = {
            ("0" if exp < 0 else str(2**exp)): n
            for exp, n in sorted(self._buckets.items())
        }
        return {
            "count": self.count,
            "sum": self.sum,
            "min": 0.0 if self.min is None else self.min,
            "max": 0.0 if self.max is None else self.max,
            "mean": self.mean,
            "buckets": buckets,
        }


class MetricsRegistry:
    """Named counters, gauges, and histograms for one run."""

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}

    def inc(self, name: str, delta: float = 1.0) -> None:
        """Add ``delta`` to counter ``name`` (created at 0)."""
        self.counters[name] = self.counters.get(name, 0.0) + float(delta)

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest value."""
        self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into histogram ``name`` (created on first use)."""
        if name not in self.histograms:
            self.histograms[name] = Histogram()
        self.histograms[name].observe(value)

    def to_dict(self) -> dict:
        """Deterministically ordered JSON form of the registry."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: h.to_dict() for name, h in sorted(self.histograms.items())
            },
        }


def run_metrics(
    engine: "SimEngine",
    meta: dict | None = None,
    sections: dict | None = None,
) -> dict:
    """Serialise one finished run to the stable metrics schema.

    ``meta`` entries (algorithm name, graph, format, ...) land under
    ``"meta"`` and are reported but never diffed by ``repro compare``;
    ``meta.git_sha`` and ``meta.schema_versions`` are stamped
    automatically so every dump is self-describing.  Everything else —
    totals, per-kernel rows, registry contents, per-array attribution,
    emulated hardware counters, roofline — is numeric and comparable.

    ``sections`` merges additional top-level sections into the payload
    (e.g. the serving layer's ``serve`` summary); numeric leaves in
    them are diffed by ``repro compare`` like any other section, so a
    subsystem can extend the schema without forking it.  Reserved keys
    (``schema``, ``meta``, ...) cannot be overridden.
    """
    from repro.obs.counters import emulated_counters, kernel_array_attribution
    from repro.obs.roofline import kernel_rooflines

    summary = engine.kernel_summary()
    hw_counters = emulated_counters(engine)
    totals = {
        "elapsed_seconds": engine.elapsed_seconds,
        "launches": float(engine.num_launches),
        "device_bytes": sum(r["device_bytes"] for r in summary.values()),
        "host_bytes": sum(r["host_bytes"] for r in summary.values()),
        "cached_bytes": sum(r["cached_bytes"] for r in summary.values()),
        "instructions": sum(r["instructions"] for r in summary.values()),
        "dram_sectors": sum(r["dram_sectors"] for r in hw_counters.values()),
        "pcie_sectors": sum(r["pcie_sectors"] for r in hw_counters.values()),
    }
    roofline = {
        r.name: {
            "achieved_dram_gbs": r.achieved_dram_bw / 1e9,
            "achieved_link_gbs": r.achieved_link_bw / 1e9,
            "dram_frac_of_peak": r.dram_frac,
            "link_frac_of_peak": r.link_frac,
            "compute_frac_of_peak": r.compute_frac,
            "bound": r.bound,
            "bound_array": r.bound_array,
        }
        for r in kernel_rooflines(engine)
    }
    # Per-kernel x per-array traffic, keyed "kernel/array" so the flat
    # dotted-key diff in repro compare addresses each cell directly.
    arrays = {
        f"{kernel}/{array}": traffic.to_dict()
        for kernel, table in sorted(kernel_array_attribution(engine).items())
        for array, traffic in sorted(table.items())
    }
    full_meta = {"git_sha": git_sha(), **(meta or {})}
    full_meta["schema_versions"] = {"metrics": METRICS_SCHEMA}
    payload = {
        "schema": METRICS_SCHEMA,
        "meta": dict(sorted(full_meta.items())),
        "device": {
            "name": engine.device.name,
            "dram_bandwidth": engine.device.dram_bandwidth,
            "link_bandwidth": engine.device.link_bandwidth,
            "memory_bytes": float(engine.device.memory_bytes),
        },
        "totals": totals,
        "kernels": {name: dict(sorted(row.items()))
                    for name, row in sorted(summary.items())},
        **engine.metrics.to_dict(),
        "arrays": arrays,
        "hw_counters": {
            name: dict(sorted(row.items()))
            for name, row in sorted(hw_counters.items())
        },
        "roofline": roofline,
    }
    from repro.obs.critpath import (
        critical_path_section,
        extract_critical_path,
    )
    from repro.obs.whatif import rank_engine_whatifs, whatif_section

    payload["critical_path"] = critical_path_section(
        extract_critical_path(engine)
    )
    payload["whatif"] = whatif_section(rank_engine_whatifs(engine))
    if sections:
        clash = sorted(set(sections) & set(payload))
        if clash:
            raise ValueError(
                f"extra sections would shadow reserved keys: {clash}"
            )
        payload.update(sections)
    return payload


def bytes_per_edge(engine: "SimEngine", edges: int) -> float:
    """Off-chip bytes moved per traversed edge — the paper's core ratio.

    EFG's whole bet is lowering this number below CSR's; recording it
    as a gauge per run makes the compression win directly diffable.
    """
    summary = engine.kernel_summary()
    total = sum(r["device_bytes"] + r["host_bytes"] for r in summary.values())
    return total / edges if edges else 0.0


def dump_metrics(payload: dict, path: str) -> None:
    """Write a metrics dict as canonical JSON (sorted keys, 2-space).

    Canonical form is what makes the determinism guarantee testable:
    identical runs yield byte-identical files.
    """
    with open(path, "w") as fh:
        json.dump(payload, fh, sort_keys=True, indent=2)
        fh.write("\n")
