"""Critical-path extraction over recorded runs.

A finished run — single-GPU engine timeline or distributed cluster —
is a complete record of every priced charge.  This module walks that
record and labels each segment *on* or *off* the end-to-end critical
path:

* **Single-GPU** runs are strictly serial: the engine clock only ever
  advances through ``SimEngine.launch``, so every kernel launch is on
  the path and the chain is the timeline itself.
* **Distributed** runs advance the cluster clock once per
  bulk-synchronous level (``ShardedCluster.finish_level``), by
  ``expand + exchange + claim`` in the serial cost model or
  ``max(expand, exchange) + claim`` under overlap (PR 6), plus any
  serial post-level sync (PageRank's scalar allreduce).  Under overlap
  the shorter of expand/exchange is *off* the path — its whole
  duration is hidden, and its ``slack_seconds`` says how much it could
  grow before surfacing.

:func:`verify_critpath` replays the on-path chain with exactly the
arithmetic the simulator used (same order, same association) and
asserts the sum reproduces ``elapsed_seconds`` bit-for-bit — floats
are not associative, so the replay mirrors the original accumulation
rather than summing segments in an arbitrary order.  The check uses
explicit ``raise AssertionError`` so it survives ``python -O``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "CriticalPath",
    "PathSegment",
    "critical_path_section",
    "critpath_report_line",
    "extract_cluster_critical_path",
    "extract_critical_path",
    "verify_critpath",
]


@dataclass
class PathSegment:
    """One attributed slice of a run's wall-clock.

    ``level`` orders segments into their bulk-synchronous group (for a
    single-GPU run, the enclosing level span's ordinal, or -1 outside
    any level).  ``phase`` is ``expand``/``exchange``/``claim``/
    ``sync`` on clusters and the kernel name on engines.  ``array`` is
    the kernel's dominant traffic binding, ``tier`` the link tier an
    exchange drained on.  Off-path segments are fully hidden under the
    path; ``slack_seconds`` is how much they could grow before
    surfacing on it.
    """

    level: int
    level_name: str
    phase: str
    kernel: str = ""
    array: str = ""
    tier: str = ""
    start_s: float = 0.0
    seconds: float = 0.0
    on_path: bool = True
    slack_seconds: float = 0.0


@dataclass
class CriticalPath:
    """The labeled segment chain of one finished run."""

    #: ``"engine"`` (serial single-GPU timeline) or ``"cluster"``.
    kind: str
    #: Whether the cluster priced levels with the overlap model.
    overlap: bool
    #: The recorded end-to-end clock the on-path chain must reproduce.
    elapsed_seconds: float
    segments: list[PathSegment] = field(default_factory=list)

    @property
    def on_path(self) -> list[PathSegment]:
        """The segments that carry the end-to-end time."""
        return [s for s in self.segments if s.on_path]

    @property
    def hidden_seconds(self) -> float:
        """Total off-path time hidden under the path (overlap wins)."""
        return sum(s.seconds for s in self.segments if not s.on_path)

    def levels(self) -> list[list[PathSegment]]:
        """Segments grouped by bulk-synchronous level, in clock order."""
        groups: list[list[PathSegment]] = []
        current: int | None = None
        for seg in self.segments:
            if seg.level != current:
                groups.append([])
                current = seg.level
            groups[-1].append(seg)
        return groups

    def phase_seconds(self) -> dict[str, float]:
        """On-path seconds per phase (display aggregation)."""
        out: dict[str, float] = {}
        for seg in self.on_path:
            out[seg.phase] = out.get(seg.phase, 0.0) + seg.seconds
        return out


def _dominant_array(breakdown: dict) -> str:
    """The array carrying the most bytes (name breaks exact ties)."""
    if not breakdown:
        return ""
    return max(breakdown.items(), key=lambda kv: (kv[1], kv[0]))[0]


def extract_critical_path(engine) -> CriticalPath:
    """Label a single-GPU engine timeline (every launch is on-path).

    Walks the span tree in pre-order — kernel spans appear in launch
    order, each annotated at close with the exact ``seconds`` the
    engine clock advanced by — and attributes each launch to its
    enclosing level span and dominant traffic array.
    """
    path = CriticalPath(
        kind="engine",
        overlap=False,
        elapsed_seconds=engine.elapsed_seconds,
    )
    root = engine.tracer.root
    if root is None:
        return path
    level = -1
    level_name = ""
    level_depth = -1
    for depth, span in root.walk():
        if span.kind == "level":
            level += 1
            level_name = span.name
            level_depth = depth
        elif depth <= level_depth:
            # Left the level subtree: later kernels are outside it.
            level_name = ""
            level_depth = -1
        if span.kind != "kernel":
            continue
        path.segments.append(
            PathSegment(
                level=level if level_name else -1,
                level_name=level_name,
                phase=span.name,
                kernel=span.name,
                array=_dominant_array(span.attrs.get("breakdown", {})),
                start_s=span.start_s,
                seconds=float(span.attrs.get("seconds", 0.0)),
                on_path=True,
            )
        )
    return path


def _cluster_kernel_arrays(cluster) -> dict[str, str]:
    """Dominant traffic array per kernel name, summed over all shards."""
    totals: dict[str, dict[str, float]] = {}
    for backend in cluster.backends:
        for rec in backend.engine.records:
            per = totals.setdefault(rec.name, {})
            for array, nbytes in rec.cost.breakdown.items():
                per[array] = per.get(array, 0.0) + nbytes
    return {name: _dominant_array(per) for name, per in totals.items()}


def extract_cluster_critical_path(cluster) -> CriticalPath:
    """Label a cluster run's level charges on/off the critical path.

    Serial model: expand, exchange, claim (and sync) all queue — every
    segment is on-path.  Overlap model: the longer of expand/exchange
    is on-path (expand wins exact ties, mirroring ``max``'s
    first-argument preference in ``level_seconds``) and the shorter is
    hidden; claim and sync stay serial.  Exchange segments bind to the
    tier that spent more fabric time.
    """
    path = CriticalPath(
        kind="cluster",
        overlap=cluster.overlap,
        elapsed_seconds=cluster.clock,
    )
    arrays = _cluster_kernel_arrays(cluster)
    clock = 0.0
    for i, charge in enumerate(cluster.charges):
        ex = charge.exchange
        expand_on = True
        exchange_on = True
        if cluster.overlap:
            expand_on = charge.expand_seconds >= ex.seconds
            exchange_on = not expand_on
        longer = max(charge.expand_seconds, ex.seconds)
        # Kernel spans carry per-launch names; finish_level recorded
        # the phase kernels explicitly, so look them up from the
        # charge's driver annotations via the level span attrs.
        span_attrs = _charge_span_attrs(cluster, charge.name)
        expand_kernel = str(span_attrs.get("expand_kernel", ""))
        claim_kernel = str(span_attrs.get("claim_kernel", ""))
        intra_s = (
            ex.tier_transfer_seconds["intra"]
            + ex.tier_latency_seconds["intra"]
        )
        inter_s = (
            ex.tier_transfer_seconds["inter"]
            + ex.tier_latency_seconds["inter"]
        )
        tier = "inter" if inter_s > intra_s else "intra"
        path.segments.append(
            PathSegment(
                level=i,
                level_name=charge.name,
                phase="expand",
                kernel=expand_kernel,
                array=arrays.get(expand_kernel, ""),
                start_s=clock,
                seconds=charge.expand_seconds,
                on_path=expand_on,
                slack_seconds=(
                    0.0 if expand_on else longer - charge.expand_seconds
                ),
            )
        )
        path.segments.append(
            PathSegment(
                level=i,
                level_name=charge.name,
                phase="exchange",
                tier=tier,
                # Overlapped phases both start at the level boundary.
                start_s=clock if cluster.overlap
                else clock + charge.expand_seconds,
                seconds=ex.seconds,
                on_path=exchange_on,
                slack_seconds=(
                    0.0 if exchange_on else longer - ex.seconds
                ),
            )
        )
        serial_front = (
            longer if cluster.overlap
            else charge.expand_seconds + ex.seconds
        )
        path.segments.append(
            PathSegment(
                level=i,
                level_name=charge.name,
                phase="claim",
                kernel=claim_kernel,
                array=arrays.get(claim_kernel, ""),
                start_s=clock + serial_front,
                seconds=charge.claim_seconds,
                on_path=True,
            )
        )
        if charge.sync_record is not None:
            path.segments.append(
                PathSegment(
                    level=i,
                    level_name=charge.name,
                    phase="sync",
                    tier="intra",
                    start_s=clock + serial_front + charge.claim_seconds,
                    seconds=charge.sync_seconds,
                    on_path=True,
                )
            )
        clock += _replay_level(charge, cluster.overlap)
    return path


def _charge_span_attrs(cluster, name: str) -> dict:
    root = cluster.tracer.root
    if root is None:
        return {}
    for span in root.find("level"):
        if span.name == name:
            return span.attrs
    return {}


def _replay_level(charge, overlap: bool) -> float:
    """One level's clock advance, with the simulator's exact arithmetic.

    Mirrors ``ShardedCluster.level_seconds`` + ``finish_level``: the
    serial sum is left-associated, overlap takes ``max`` first, and a
    sync adds on after — the same expressions, so the replayed float
    is bit-identical to the recorded advance.
    """
    ex_seconds = charge.exchange.seconds
    if overlap:
        total = max(charge.expand_seconds, ex_seconds) + charge.claim_seconds
    else:
        total = charge.expand_seconds + ex_seconds + charge.claim_seconds
    return total + charge.sync_seconds if charge.sync_seconds else total


def verify_critpath(path: CriticalPath) -> None:
    """Assert the on-path chain reproduces ``elapsed_seconds`` exactly.

    Replays the accumulation with the simulator's own operation order:
    per-launch ``acc += seconds`` for engines, the per-level
    serial/overlap expression for clusters.  Every on-path segment
    contributes its full duration exactly once; off-path segments
    contribute nothing.  Raises ``AssertionError`` (explicitly — the
    invariant holds under ``python -O``) on any mismatch.
    """
    if path.kind == "engine":
        acc = 0.0
        for seg in path.segments:
            if not seg.on_path:
                raise AssertionError(
                    f"engine runs are serial; segment {seg.phase!r} at "
                    f"{seg.start_s} cannot be off-path"
                )
            acc += seg.seconds
    else:
        acc = 0.0
        for group in path.levels():
            phases = {}
            for seg in group:
                if seg.phase in phases:
                    raise AssertionError(
                        f"level {seg.level_name!r} has duplicate "
                        f"{seg.phase!r} segments"
                    )
                phases[seg.phase] = seg
            expand = phases.get("expand")
            exchange = phases.get("exchange")
            claim = phases.get("claim")
            if expand is None or exchange is None or claim is None:
                raise AssertionError(
                    f"level group {group[0].level_name!r} is missing an "
                    "expand/exchange/claim segment"
                )
            if path.overlap:
                longer, shorter = expand, exchange
                if exchange.seconds > expand.seconds:
                    longer, shorter = exchange, expand
                if not longer.on_path or shorter.on_path:
                    raise AssertionError(
                        f"level {expand.level_name!r}: overlap on-path "
                        "labels disagree with the longer phase"
                    )
                total = (
                    max(expand.seconds, exchange.seconds) + claim.seconds
                )
            else:
                if not (expand.on_path and exchange.on_path):
                    raise AssertionError(
                        f"level {expand.level_name!r}: serial phases "
                        "must all be on-path"
                    )
                total = expand.seconds + exchange.seconds + claim.seconds
            if not claim.on_path:
                raise AssertionError(
                    f"level {claim.level_name!r}: claim is never hidden"
                )
            sync = phases.get("sync")
            if sync is not None:
                if not sync.on_path:
                    raise AssertionError(
                        f"level {sync.level_name!r}: sync is serial"
                    )
                total = total + sync.seconds if sync.seconds else total
            acc += total
    if acc != path.elapsed_seconds:
        raise AssertionError(
            f"on-path replay {acc!r} != elapsed {path.elapsed_seconds!r} "
            f"({path.kind}, overlap={path.overlap})"
        )


def critical_path_section(path: CriticalPath) -> dict:
    """The ``critical_path`` metrics-dump section (numeric, diffable)."""
    phases = path.phase_seconds()
    return {
        "elapsed_seconds": path.elapsed_seconds,
        "hidden_seconds": path.hidden_seconds,
        "segments": float(len(path.segments)),
        "on_path_segments": float(len(path.on_path)),
        "phases": {
            name: phases[name] for name in sorted(phases)
        },
    }


def critpath_report_line(path: CriticalPath, top: int = 5) -> str:
    """``critical path: 54% expand / 31% exchange / ...`` report line."""
    phases = path.phase_seconds()
    if not phases or path.elapsed_seconds <= 0.0:
        return "critical path: (empty run)"
    ranked = sorted(phases.items(), key=lambda kv: (-kv[1], kv[0]))
    parts = [
        f"{100.0 * seconds / path.elapsed_seconds:.0f}% "
        f"{name if len(name) <= 32 else name[:31] + '…'}"
        for name, seconds in ranked[:top]
    ]
    if len(ranked) > top:
        parts.append(f"+{len(ranked) - top} more")
    line = f"critical path: {' / '.join(parts)}"
    if path.hidden_seconds > 0.0:
        line += f" ({path.hidden_seconds * 1e3:.4f} ms hidden)"
    return line
