"""SLO specs, multi-window burn-rate alerting, and the JSONL event log.

Batch metrics say what a finished run cost; a *service* needs to know,
continuously, whether it is meeting its promises.  This module supplies
the standard SRE machinery, evaluated on the **simulated** clock so
every alert fires (or doesn't) byte-deterministically:

* :class:`SLOSpec` — a declarative objective.  Two kinds::

      SLOSpec(name="latency-p99", kind="latency",
              objective=0.99, threshold_s=2e-7, ...)
      # "99% of served queries complete within 200 sim-ns"

      SLOSpec(name="miss-rate", kind="miss", objective=0.95, ...)
      # "95% of terminal outcomes are served (not expired/rejected)"

* :class:`SLOEngine` — records one good/bad observation per query
  outcome into a per-spec :class:`~repro.obs.timeseries.TimeSeries`
  and evaluates **multi-window burn rates**: with error budget
  ``1 - objective``, the burn rate over a window is
  ``bad_fraction / budget`` (1.0 = spending the budget exactly on
  schedule; 10 = ten times too fast).  An alert requires the burn to
  exceed ``burn_threshold`` on *both* the long and the short window —
  the long window gives significance, the short window proves the
  overload is still happening (no alerting on stale history).  State
  transitions (ok ↔ alerting) are returned and logged as events.

* :class:`EventLog` — append-only structured JSONL (one canonical
  ``json.dumps(sort_keys=True)`` object per line, monotone ``seq``)
  with size-based rotation to ``<path>.1``.  Admissions, rejections,
  expiries, cache hits/evictions, epoch transitions, waves, and SLO
  state changes all land here; two identical drives produce
  byte-identical logs (asserted in CI).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from repro.obs.timeseries import TimeSeries

__all__ = ["SLOSpec", "SLOState", "SLOEngine", "EventLog"]

#: Observation kinds an SLOSpec can judge.
SLO_KINDS = ("latency", "miss")


@dataclass(frozen=True)
class SLOSpec:
    """One declarative service-level objective.

    ``kind="latency"`` judges *served* queries only: an observation is
    bad when its latency exceeds ``threshold_s``.  ``kind="miss"``
    judges every terminal outcome: bad when the query was expired or
    rejected.  ``objective`` is the target good fraction (0.99 = "99%
    good"); the error budget is ``1 - objective``.
    """

    name: str
    kind: str
    objective: float
    #: Latency cutoff on the simulated clock (latency kind only).
    threshold_s: float = 0.0
    long_window_s: float = 1e-6
    short_window_s: float = 1e-7
    #: Alert when burn exceeds this on BOTH windows.
    burn_threshold: float = 10.0

    def __post_init__(self) -> None:
        if self.kind not in SLO_KINDS:
            raise ValueError(
                f"kind must be one of {SLO_KINDS}, got {self.kind!r}"
            )
        if not (0.0 < self.objective < 1.0):
            raise ValueError(
                f"objective must be in (0, 1), got {self.objective}"
            )
        if self.kind == "latency" and self.threshold_s <= 0:
            raise ValueError("latency SLO needs threshold_s > 0")
        if self.short_window_s <= 0 or self.long_window_s < self.short_window_s:
            raise ValueError(
                f"windows must satisfy 0 < short <= long, got "
                f"short={self.short_window_s} long={self.long_window_s}"
            )
        if self.burn_threshold <= 0:
            raise ValueError(
                f"burn_threshold must be > 0, got {self.burn_threshold}"
            )

    @property
    def budget(self) -> float:
        """Error budget: tolerable bad fraction."""
        return 1.0 - self.objective


@dataclass
class SLOState:
    """Mutable evaluation state for one spec."""

    spec: SLOSpec
    #: bad ∈ {0, 1} per observation, on the simulated clock.
    series: TimeSeries = field(
        default_factory=lambda: TimeSeries(capacity=4096)
    )
    alerting: bool = False
    #: Times the state flipped ok -> alerting.
    alerts: int = 0
    bad_total: int = 0

    def burn(self, window_s: float, now: float) -> float:
        """Burn rate over ``(now - window_s, now]`` (0 if no samples)."""
        stats = self.series.stats(window_s, now=now)
        if stats["count"] == 0:
            return 0.0
        bad_fraction = stats["sum"] / stats["count"]
        return bad_fraction / self.spec.budget

    def snapshot(self, now: float) -> dict:
        """Numeric-only state for the metrics ``service`` section."""
        spec = self.spec
        return {
            "objective": spec.objective,
            "burn_threshold": spec.burn_threshold,
            "long_window_s": spec.long_window_s,
            "short_window_s": spec.short_window_s,
            "burn_long": self.burn(spec.long_window_s, now),
            "burn_short": self.burn(spec.short_window_s, now),
            "alerting": 1.0 if self.alerting else 0.0,
            "alerts": float(self.alerts),
            "observations": float(len(self.series)),
            "bad": float(self.bad_total),
        }


class SLOEngine:
    """Evaluates a set of :class:`SLOSpec` s against the outcome stream."""

    def __init__(self, specs: tuple[SLOSpec, ...] = ()) -> None:
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names: {sorted(names)}")
        self.states: dict[str, SLOState] = {
            s.name: SLOState(spec=s) for s in specs
        }

    def observe(
        self, t: float, *, outcome: str, latency_s: float | None = None
    ) -> list[tuple[str, bool]]:
        """Record one terminal query outcome; returns state changes.

        ``outcome`` is a :class:`~repro.serve.service.QueryResult`
        status (done/cached/rejected/expired).  Latency specs observe
        only served queries; miss specs observe everything.  The
        returned list holds ``(spec_name, now_alerting)`` transitions,
        ready for the event log.
        """
        changes: list[tuple[str, bool]] = []
        for state in self.states.values():
            spec = state.spec
            if spec.kind == "latency":
                if outcome not in ("done", "cached") or latency_s is None:
                    continue
                bad = latency_s > spec.threshold_s
            else:  # miss
                bad = outcome in ("rejected", "expired")
            state.series.record(t, 1.0 if bad else 0.0)
            if bad:
                state.bad_total += 1
            changes.extend(self._evaluate(state, t))
        return changes

    def _evaluate(self, state: SLOState, now: float) -> list:
        spec = state.spec
        short = state.series.stats(spec.short_window_s, now=now)
        firing = (
            short["count"] > 0
            and state.burn(spec.long_window_s, now) > spec.burn_threshold
            and state.burn(spec.short_window_s, now) > spec.burn_threshold
        )
        if firing == state.alerting:
            return []
        state.alerting = firing
        if firing:
            state.alerts += 1
        return [(spec.name, firing)]

    def section(self, now: float) -> dict:
        """Per-spec numeric snapshot keyed by spec name."""
        return {
            name: state.snapshot(now)
            for name, state in sorted(self.states.items())
        }

    @property
    def any_alerting(self) -> bool:
        return any(s.alerting for s in self.states.values())

    @property
    def total_alerts(self) -> int:
        return sum(s.alerts for s in self.states.values())


#: Default rotation bound: one log file tops out at 4 MiB.
DEFAULT_MAX_BYTES = 4 * 1024 * 1024


class EventLog:
    """Append-only canonical JSONL with size-based rotation.

    Events are kept in memory (``lines``) and, when ``path`` is given,
    written through immediately.  When the live file would exceed
    ``max_bytes`` it is rotated to ``<path>.1`` (one generation — the
    bound is on disk footprint, not history).  Line format::

        {"kind": "...", "seq": N, "t": <sim seconds>, ...fields}

    ``json.dumps(sort_keys=True, separators=(",", ":"))`` per line, so
    identical event streams are byte-identical files.
    """

    def __init__(
        self, path: str | None = None,
        max_bytes: int = DEFAULT_MAX_BYTES,
    ) -> None:
        if max_bytes < 1024:
            raise ValueError(f"max_bytes must be >= 1024, got {max_bytes}")
        self.path = path
        self.max_bytes = max_bytes
        self.lines: list[str] = []
        self.seq = 0
        self.rotations = 0
        self._fh = None
        self._file_bytes = 0
        if path is not None:
            self._fh = open(path, "w")

    def emit(self, t: float, kind: str, **fields) -> dict:
        """Append one event; returns the event dict."""
        event = {"kind": kind, "seq": self.seq, "t": float(t), **fields}
        self.seq += 1
        line = json.dumps(event, sort_keys=True, separators=(",", ":"))
        self.lines.append(line)
        if self._fh is not None:
            encoded = len(line) + 1
            if self._file_bytes and self._file_bytes + encoded > self.max_bytes:
                self._rotate()
            self._fh.write(line + "\n")
            self._fh.flush()
            self._file_bytes += encoded
        return event

    def _rotate(self) -> None:
        self._fh.close()
        os.replace(self.path, self.path + ".1")
        self._fh = open(self.path, "w")
        self._file_bytes = 0
        self.rotations += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self.lines)

    @staticmethod
    def parse(text: str) -> list[dict]:
        """Parse JSONL text (e.g. a recorded log file) into events."""
        events = []
        for lineno, line in enumerate(text.splitlines(), start=1):
            if not line.strip():
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"event log line {lineno} is not JSON: {exc}"
                ) from None
            if not isinstance(event, dict) or "kind" not in event:
                raise ValueError(
                    f"event log line {lineno} is not an event object"
                )
            events.append(event)
        return events
