"""Hierarchical spans over simulated time.

A traversal run is a tree of nested phases — ``run -> algorithm ->
level/iteration -> kernel launch`` — and every question worth asking
about its performance ("why was level 7 slow?", "which levels paid PCIe
traffic?") is a question about one subtree.  :class:`Tracer` records
that tree: each :class:`Span` carries its simulated start/end time plus
free-form attributes (frontier size, edges expanded, direction
decision, a kernel's cost breakdown), and child spans nest strictly
inside their parent's interval because all timestamps come from the
same monotonically increasing simulated clock.

The tracer is deliberately clock-agnostic: callers pass timestamps in
(the engine passes its accumulated simulated seconds), so the span tree
is exactly as deterministic as the simulation itself — two identical
runs produce identical trees, which is what makes metrics dumps and
trace files diffable across runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["Span", "Tracer", "aggregate_kernel_costs"]

#: Cost attribute keys attached to kernel spans by the engine and
#: summed by :func:`aggregate_kernel_costs`.
KERNEL_COST_KEYS = (
    "seconds",
    "device_bytes",
    "host_bytes",
    "cached_bytes",
    "instructions",
)


@dataclass
class Span:
    """One node of the span tree.

    ``start_s``/``end_s`` are simulated seconds since the engine's
    timeline reset; ``end_s`` is ``None`` while the span is open (the
    root "run" span stays open until export, which treats the current
    simulated time as its end).
    """

    name: str
    kind: str = "phase"
    start_s: float = 0.0
    end_s: float | None = None
    attrs: dict[str, object] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    @property
    def duration_s(self) -> float:
        """Span duration; 0 while still open."""
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def annotate(self, **attrs: object) -> None:
        """Attach (or overwrite) attributes on this span."""
        self.attrs.update(attrs)

    def walk(self, depth: int = 0) -> Iterator[tuple[int, "Span"]]:
        """Depth-first (pre-order) traversal yielding ``(depth, span)``."""
        yield depth, self
        for child in self.children:
            yield from child.walk(depth + 1)

    def find(self, kind: str) -> list["Span"]:
        """All descendants (including self) of the given kind, pre-order."""
        return [s for _, s in self.walk() if s.kind == kind]

    def to_dict(self, end_default: float | None = None) -> dict:
        """JSON-ready recursive dict; open spans end at ``end_default``."""
        end = self.end_s if self.end_s is not None else end_default
        return {
            "name": self.name,
            "kind": self.kind,
            "start_s": self.start_s,
            "end_s": end,
            "attrs": dict(sorted(self.attrs.items())),
            "children": [c.to_dict(end_default) for c in self.children],
        }


class Tracer:
    """Builds the span tree for one engine run.

    The first :meth:`open` call lazily creates the root "run" span, so
    traversal drivers only ever open their own algorithm/level spans and
    the hierarchy falls out of call nesting.  Timestamps are supplied by
    the caller (the engine's simulated clock).
    """

    def __init__(self) -> None:
        self.root: Span | None = None
        self._stack: list[Span] = []

    @property
    def current(self) -> Span | None:
        """Innermost open span (``None`` between top-level spans)."""
        return self._stack[-1] if self._stack else None

    def open(
        self, name: str, kind: str, t: float, attrs: dict | None = None
    ) -> Span:
        """Open a child span of the current span at simulated time ``t``."""
        if self.root is None:
            self.root = Span(name="run", kind="run", start_s=t)
        parent = self._stack[-1] if self._stack else self.root
        span = Span(name=name, kind=kind, start_s=t, attrs=dict(attrs or {}))
        parent.children.append(span)
        self._stack.append(span)
        return span

    def close(self, t: float) -> Span:
        """Close the innermost open span at simulated time ``t``."""
        if not self._stack:
            raise RuntimeError("no open span to close")
        span = self._stack.pop()
        span.end_s = t
        return span

    def to_dict(self, end_default: float | None = None) -> dict | None:
        """The whole tree as a JSON-ready dict (``None`` if nothing ran)."""
        if self.root is None:
            return None
        return self.root.to_dict(end_default)


def aggregate_kernel_costs(span: Span) -> dict[str, float]:
    """Sum the kernel-cost attributes of every kernel span under ``span``.

    Gives per-level (or per-algorithm) traffic/instruction/time totals
    without the drivers having to thread accounting through their loops:
    the engine already attached each launch's cost to its kernel span.
    """
    totals = {key: 0.0 for key in KERNEL_COST_KEYS}
    totals["launches"] = 0.0
    for kernel in span.find("kernel"):
        totals["launches"] += 1.0
        for key in KERNEL_COST_KEYS:
            totals[key] += float(kernel.attrs.get(key, 0.0))
    return totals
