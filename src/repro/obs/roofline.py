"""Roofline / utilization analysis of a finished run.

The paper's performance argument is bandwidth arithmetic: each kernel
moved so many bytes over DRAM or PCIe, so its runtime is bounded by the
larger of the two transfer times — unless the decode instruction count
(EFG's ~70 instr/edge) or a serial chain (CGR's varint parsing) binds
first.  The simulator computes exactly those terms; this module turns
them back into the paper's story: per kernel (and per traversal level)
it reports achieved vs. peak DRAM bandwidth, PCIe bandwidth, and
instruction throughput, and labels the binding term —

* ``memory``  — DRAM traffic dominates (the in-memory regime),
* ``pcie``    — host-link traffic dominates (the out-of-core regime),
* ``compute`` — decode instructions dominate (EFG's trade),
* ``cache``   — on-chip cached reads dominate (decoded-list-cache hits),
* ``latency`` — a serial dependent chain is the critical path (CGR hubs),
* ``overhead``— fixed launch cost dominates (tiny frontiers).

The per-kernel ``seconds`` are the timeline's own numbers, so they sum
to ``engine.elapsed_seconds`` exactly (modulo float association).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.obs.spans import Span, aggregate_kernel_costs

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.gpusim.engine import SimEngine

__all__ = [
    "KernelRoofline",
    "LevelRoofline",
    "kernel_rooflines",
    "level_rooflines",
    "roofline_report",
]


@dataclass(frozen=True)
class KernelRoofline:
    """Utilization summary of one kernel name across its launches."""

    name: str
    seconds: float
    launches: int
    device_bytes: float
    host_bytes: float
    cached_bytes: float
    instructions: float
    dram_time: float
    link_time: float
    cache_time: float
    compute_time: float
    overhead_time: float
    floor_seconds: float
    bound: str

    @property
    def achieved_dram_bw(self) -> float:
        """DRAM bytes per second actually sustained (0 if no time)."""
        return self.device_bytes / self.seconds if self.seconds > 0 else 0.0

    @property
    def achieved_link_bw(self) -> float:
        """PCIe bytes per second actually sustained."""
        return self.host_bytes / self.seconds if self.seconds > 0 else 0.0

    @property
    def achieved_instr_rate(self) -> float:
        """Instructions per second actually sustained."""
        return self.instructions / self.seconds if self.seconds > 0 else 0.0

    # Fractions of peak are filled in by the analysis (they need the
    # device spec); stored flat so dataclass stays frozen and simple.
    dram_frac: float = 0.0
    link_frac: float = 0.0
    compute_frac: float = 0.0

    #: Array that dominated the binding byte term (per-array traffic
    #: attribution): for a ``pcie``-bound kernel, the host-resident
    #: array whose cachelines bind it; for ``memory``/``cache`` bounds
    #: likewise per residency; otherwise the top array overall.  Empty
    #: when the kernel recorded no attributed traffic.
    bound_array: str = ""


@dataclass(frozen=True)
class LevelRoofline:
    """Utilization summary of one level/iteration span."""

    name: str
    algorithm: str
    seconds: float
    launches: int
    device_bytes: float
    host_bytes: float
    cached_bytes: float
    instructions: float
    bound: str
    attrs: dict


def _bound_label(
    dram_time: float,
    link_time: float,
    cache_time: float,
    compute_time: float,
    floor_seconds: float,
    overhead_time: float,
) -> str:
    """Name the binding term of ``overhead + max(...)``."""
    terms = {
        "memory": dram_time,
        "pcie": link_time,
        "cache": cache_time,
        "compute": compute_time,
        "latency": floor_seconds,
    }
    # Deterministic tie-break: the fixed ordering above.
    bound, peak = max(terms.items(), key=lambda kv: kv[1])
    if overhead_time > peak:
        return "overhead"
    return bound


def _analyze(
    engine: "SimEngine",
    seconds: float,
    launches: float,
    device_bytes: float,
    host_bytes: float,
    cached_bytes: float,
    instructions: float,
    floor_seconds: float,
) -> tuple[str, float, float, float, float, float, float]:
    """Time components + bound label for one aggregated cost row."""
    dev = engine.device
    params = engine.params
    dram_time = device_bytes / dev.dram_bandwidth
    link_time = host_bytes / dev.link_bandwidth
    cache_time = cached_bytes / (dev.dram_bandwidth * params.cached_bw_ratio)
    effective_issue = dev.instruction_throughput * params.simt_efficiency
    compute_time = instructions / effective_issue
    overhead_time = launches * dev.launch_overhead_s
    bound = _bound_label(
        dram_time, link_time, cache_time, compute_time, floor_seconds,
        overhead_time,
    )
    return (
        bound, dram_time, link_time, cache_time, compute_time, overhead_time,
        effective_issue,
    )


#: Which traffic residency a bound label points at, for bound_array.
_BOUND_RESIDENCY = {"memory": "device", "pcie": "host", "cache": "cache"}


def _bound_array(
    attribution: dict[str, dict], name: str, bound: str
) -> str:
    """Array responsible for the binding byte term of kernel ``name``."""
    from repro.obs.counters import top_array

    table = attribution.get(name, {})
    residency = _BOUND_RESIDENCY.get(bound)
    if residency is not None:
        picked = top_array(table, residency)
        if picked:
            return picked
    # compute/latency/overhead bound (or nothing moved in the binding
    # residency): report the heaviest array overall for context.
    return top_array(table)


def kernel_rooflines(engine: "SimEngine") -> list[KernelRoofline]:
    """Per-kernel utilization rows, sorted by descending time."""
    from repro.obs.counters import kernel_array_attribution

    dev = engine.device
    attribution = kernel_array_attribution(engine)
    out: list[KernelRoofline] = []
    for name, row in engine.kernel_summary().items():
        (bound, dram_t, link_t, cache_t, compute_t, overhead_t,
         effective_issue) = _analyze(
            engine,
            row["seconds"],
            row["launches"],
            row["device_bytes"],
            row["host_bytes"],
            row["cached_bytes"],
            row["instructions"],
            row.get("floor_seconds", 0.0),
        )
        seconds = row["seconds"]
        out.append(
            KernelRoofline(
                name=name,
                seconds=seconds,
                launches=int(row["launches"]),
                device_bytes=row["device_bytes"],
                host_bytes=row["host_bytes"],
                cached_bytes=row["cached_bytes"],
                instructions=row["instructions"],
                dram_time=dram_t,
                link_time=link_t,
                cache_time=cache_t,
                compute_time=compute_t,
                overhead_time=overhead_t,
                floor_seconds=row.get("floor_seconds", 0.0),
                bound=bound,
                dram_frac=(
                    row["device_bytes"] / seconds / dev.dram_bandwidth
                    if seconds > 0 else 0.0
                ),
                link_frac=(
                    row["host_bytes"] / seconds / dev.link_bandwidth
                    if seconds > 0 else 0.0
                ),
                compute_frac=(
                    row["instructions"] / seconds / effective_issue
                    if seconds > 0 else 0.0
                ),
                bound_array=_bound_array(attribution, name, bound),
            )
        )
    out.sort(key=lambda r: (-r.seconds, r.name))
    return out


def level_rooflines(engine: "SimEngine") -> list[LevelRoofline]:
    """Per-level utilization rows from the span tree, in run order."""
    root = engine.tracer.root
    if root is None:
        return []
    out: list[LevelRoofline] = []
    for algo in root.children:
        for level in algo.find("level"):
            totals = aggregate_kernel_costs(level)
            bound = _analyze(
                engine,
                totals["seconds"],
                totals["launches"],
                totals["device_bytes"],
                totals["host_bytes"],
                totals["cached_bytes"],
                totals["instructions"],
                0.0,
            )[0]
            out.append(
                LevelRoofline(
                    name=level.name,
                    algorithm=algo.name,
                    seconds=totals["seconds"],
                    launches=int(totals["launches"]),
                    device_bytes=totals["device_bytes"],
                    host_bytes=totals["host_bytes"],
                    cached_bytes=totals["cached_bytes"],
                    instructions=totals["instructions"],
                    bound=bound,
                    attrs=dict(level.attrs),
                )
            )
    return out


def _fmt_name(name: str, width: int) -> str:
    if len(name) <= width:
        return f"{name:{width}s}"
    return name[: width - 1] + "…"


def roofline_report(engine: "SimEngine", max_levels: int = 40) -> str:
    """Text report: per-kernel roofline, then per-level breakdown."""
    dev = engine.device
    rows = kernel_rooflines(engine)
    total = engine.elapsed_seconds or 1.0
    lines = [
        f"device: {dev.name}  peak DRAM {dev.dram_bandwidth / 1e9:.1f} GB/s, "
        f"link {dev.link_bandwidth / 1e9:.1f} GB/s, "
        f"issue {dev.instruction_throughput * engine.params.simt_efficiency / 1e9:.1f} Ginstr/s (derated)",
        f"{'kernel':24s} {'time(ms)':>9s} {'%':>5s} {'bound':>8s} "
        f"{'by array':>14s} "
        f"{'DRAM GB/s':>10s} {'%pk':>5s} {'PCIe GB/s':>10s} {'%pk':>5s} "
        f"{'Ginstr/s':>9s} {'%pk':>5s}",
    ]
    for r in rows:
        lines.append(
            f"{_fmt_name(r.name, 24)} {r.seconds * 1e3:9.3f} "
            f"{100 * r.seconds / total:5.1f} {r.bound:>8s} "
            f"{_fmt_name(r.bound_array or '-', 14).strip():>14s} "
            f"{r.achieved_dram_bw / 1e9:10.2f} {100 * r.dram_frac:5.1f} "
            f"{r.achieved_link_bw / 1e9:10.2f} {100 * r.link_frac:5.1f} "
            f"{r.achieved_instr_rate / 1e9:9.2f} {100 * r.compute_frac:5.1f}"
        )
    levels = level_rooflines(engine)
    if levels:
        lines.append("")
        lines.append(
            f"{'level':24s} {'time(ms)':>9s} {'bound':>8s} {'launches':>8s} "
            f"{'MB moved':>9s} {'frontier':>9s} {'edges':>10s} "
            f"{'top array':>14s}"
        )
        shown = levels[:max_levels]
        for lv in shown:
            moved = (lv.device_bytes + lv.host_bytes) / 1e6
            frontier = lv.attrs.get("frontier_size", "")
            edges = lv.attrs.get("edges_expanded", "")
            top = lv.attrs.get("top_array", "") or "-"
            lines.append(
                f"{_fmt_name(f'{lv.algorithm}/{lv.name}', 24)} "
                f"{lv.seconds * 1e3:9.3f} {lv.bound:>8s} {lv.launches:8d} "
                f"{moved:9.3f} {frontier!s:>9s} {edges!s:>10s} "
                f"{_fmt_name(str(top), 14).strip():>14s}"
            )
        if len(levels) > len(shown):
            lines.append(f"... {len(levels) - len(shown)} more levels")
    return "\n".join(lines)
