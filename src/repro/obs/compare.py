"""Run-comparison tooling: diff two metrics dumps, gate regressions.

``repro compare a.json b.json`` flattens the numeric leaves of two
:func:`repro.obs.metrics.run_metrics` dumps and prints per-key deltas
(per-kernel seconds, per-term bytes, counters, histogram moments).  A
relative change beyond the threshold on any key marks the comparison as
a regression and the CLI exits non-zero, so CI can run the same
workload on base and PR and fail the build when a cost term moved.

Deterministic runs (same graph, same seed) produce byte-identical
dumps, so the zero-delta case is exact, not approximate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.obs.metrics import SUPPORTED_SCHEMAS

__all__ = ["DeltaRow", "Comparison", "load_metrics", "flatten_metrics",
           "check_sections", "compare_metrics", "format_comparison"]

#: Sections never diffed: identity, not measurement.
SKIP_SECTIONS = ("meta", "schema", "device")

#: Sections allowed to exist on one side only: schema-growth sections
#: (a ``repro.metrics/1`` baseline predates ``arrays``/``hw_counters``;
#: ``critical_path``/``whatif`` appear only on profiled runs).  Any
#: *other* one-sided section — e.g. the serving ``service`` section
#: against a pre-observability dump — means the two dumps describe
#: different workloads and the comparison refuses rather than silently
#: diffing a whole subsystem against zero.
OPTIONAL_SECTIONS = frozenset(
    {"arrays", "hw_counters", "critical_path", "whatif"}
)


@dataclass(frozen=True)
class DeltaRow:
    """One compared numeric leaf."""

    key: str
    a: float
    b: float

    @property
    def delta(self) -> float:
        return self.b - self.a

    @property
    def rel(self) -> float:
        """Relative change of b vs a (signed; inf when a == 0 != b)."""
        if self.a == 0.0:
            return 0.0 if self.b == 0.0 else float("inf")
        return (self.b - self.a) / abs(self.a)


@dataclass
class Comparison:
    """Outcome of diffing two metrics dumps."""

    rows: list[DeltaRow] = field(default_factory=list)
    threshold: float = 0.0  # relative (0.05 = 5%)

    @property
    def changed(self) -> list[DeltaRow]:
        """Rows with any delta at all."""
        return [r for r in self.rows if r.delta != 0.0]

    @property
    def regressions(self) -> list[DeltaRow]:
        """Rows past the threshold, worst relative change first.

        Deterministically ordered: ties on ``|rel|`` (e.g. several
        keys appearing on one side only, all ``inf``) break on the
        key, so two runs of ``repro compare`` always print and gate
        on the identical list.
        """
        rows = [r for r in self.rows if abs(r.rel) > self.threshold]
        return sorted(rows, key=lambda r: (-abs(r.rel), r.key))

    @property
    def ok(self) -> bool:
        """True when no key moved past the threshold."""
        return not self.regressions


def load_metrics(path: str) -> dict:
    """Load and schema-check one metrics dump.

    Accepts every schema in
    :data:`~repro.obs.metrics.SUPPORTED_SCHEMAS` — ``repro.metrics/2``
    is a strict superset of ``/1``, so a v1 baseline diffs cleanly
    against a v2 run on the shared keys (new v2 sections compare
    against 0 and show up as additions, not errors).
    """
    with open(path) as fh:
        payload = json.load(fh)
    schema = payload.get("schema")
    if schema not in SUPPORTED_SCHEMAS:
        raise ValueError(
            f"{path}: schema {schema!r} not in supported {SUPPORTED_SCHEMAS!r}"
        )
    return payload


def _flatten(node, prefix: str, out: dict[str, float]) -> None:
    if isinstance(node, dict):
        for key, value in node.items():
            _flatten(value, f"{prefix}.{key}" if prefix else str(key), out)
    elif isinstance(node, bool):
        return  # bools are config, not measurement
    elif isinstance(node, (int, float)):
        out[prefix] = float(node)


def flatten_metrics(payload: dict) -> dict[str, float]:
    """Numeric leaves of a dump as dotted keys, skipping identity keys."""
    out: dict[str, float] = {}
    for section, node in payload.items():
        if section in SKIP_SECTIONS:
            continue
        _flatten(node, section, out)
    return out


def check_sections(a: dict, b: dict) -> None:
    """Refuse structurally mismatched dumps with a named-section error.

    Raises ``ValueError`` listing every section present in exactly one
    dump (identity and schema-growth sections exempt) — the error
    ``repro compare`` turns into exit code 2.
    """
    exempt = set(SKIP_SECTIONS) | OPTIONAL_SECTIONS
    only_a = sorted(set(a) - set(b) - exempt)
    only_b = sorted(set(b) - set(a) - exempt)
    if only_a or only_b:
        parts = []
        if only_a:
            parts.append(f"only in first dump: {', '.join(only_a)}")
        if only_b:
            parts.append(f"only in second dump: {', '.join(only_b)}")
        raise ValueError(
            "section mismatch — the dumps describe different workloads "
            f"({'; '.join(parts)})"
        )


def compare_metrics(a: dict, b: dict, threshold: float = 0.0) -> Comparison:
    """Diff two dumps; keys present in only one side compare against 0.

    Whole-section mismatches are refused (see :func:`check_sections`):
    a missing *key* is a measurement that moved to zero, but a missing
    *section* means a different workload shape was recorded.
    """
    check_sections(a, b)
    fa = flatten_metrics(a)
    fb = flatten_metrics(b)
    rows = [
        DeltaRow(key=key, a=fa.get(key, 0.0), b=fb.get(key, 0.0))
        for key in sorted(set(fa) | set(fb))
    ]
    return Comparison(rows=rows, threshold=threshold)


def format_comparison(cmp: Comparison, max_rows: int = 40) -> str:
    """Human-readable delta table (changed keys only, largest first;
    ties on relative change break on the key for deterministic output)."""
    changed = sorted(cmp.changed, key=lambda r: (-abs(r.rel), r.key))
    lines = [
        f"{len(cmp.rows)} keys compared, {len(changed)} changed, "
        f"{len(cmp.regressions)} past threshold "
        f"({100 * cmp.threshold:.2f}%)"
    ]
    if not changed:
        lines.append("no deltas: runs are metrically identical")
        return "\n".join(lines)
    lines.append(f"{'key':48s} {'a':>14s} {'b':>14s} {'delta':>12s} {'rel%':>8s}")
    shown = changed[:max_rows]
    for r in shown:
        name = r.key if len(r.key) <= 48 else r.key[:47] + "…"
        rel = "inf" if r.rel == float("inf") else f"{100 * r.rel:8.2f}"
        flag = " *" if abs(r.rel) > cmp.threshold else ""
        lines.append(
            f"{name:48s} {r.a:14.6g} {r.b:14.6g} {r.delta:12.4g} {rel:>8s}{flag}"
        )
    if len(changed) > len(shown):
        lines.append(f"... {len(changed) - len(shown)} more changed keys")
    return "\n".join(lines)
