"""Emulated hardware counters and per-array traffic attribution.

The cost model tags every byte term with the array that generated it
(:class:`repro.gpusim.cost.ArrayTraffic`); this module is the analysis
layer that turns those tags into the counter surface an ``nvprof`` /
``ncu`` run would show:

* :func:`kernel_array_attribution` — the per-kernel x per-array table
  (the paper's Fig. 1 decomposition: which structure moved how many
  DRAM vs PCIe sectors);
* :func:`emulated_counters` — per-kernel derived counters: sectors,
  transactions, coalescing efficiency (requested vs moved bytes at
  sector granularity), warp execution efficiency, cache-hit bytes;
* :func:`verify_attribution` — the exactness invariant: per-array
  moved bytes sum to each launch's byte columns with no loss and no
  double count;
* :func:`top_array` / :func:`arrays_since` — helpers the roofline and
  the traversal drivers use to label what bound a kernel or a level.

Everything is derived from the immutable launch records, so two runs
with the same seed produce byte-identical counter tables.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.gpusim.cost import ArrayTraffic

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.gpusim.engine import SimEngine

__all__ = [
    "kernel_array_attribution",
    "emulated_counters",
    "verify_attribution",
    "top_array",
    "arrays_since",
    "counters_report",
]

#: Byte-column each residency's traffic lands in (the disjointness the
#: attribution invariant checks).
_RESIDENCY_COLUMN = {
    "device": "device_bytes",
    "host": "host_bytes",
    "cache": "cached_bytes",
}


def kernel_array_attribution(
    engine: "SimEngine", start: int = 0
) -> dict[str, dict[str, ArrayTraffic]]:
    """Per-kernel x per-array traffic table for launches from ``start``.

    Returns ``{kernel_name: {array: ArrayTraffic}}`` aggregated over the
    timeline slice ``engine.records[start:]``.
    """
    out: dict[str, dict[str, ArrayTraffic]] = {}
    for record in engine.records[start:]:
        table = out.setdefault(record.name, {})
        for array, traffic in record.cost.traffic.items():
            entry = table.get(array)
            if entry is None:
                table[array] = traffic.copy()
            else:
                entry.merge(traffic)
    return out


def emulated_counters(
    engine: "SimEngine", start: int = 0
) -> dict[str, dict[str, float]]:
    """nvprof-style derived counters per kernel name.

    * ``dram_bytes`` / ``pcie_bytes`` / ``cache_hit_bytes`` — moved
      bytes per residency (sum exactly to the launch byte columns);
    * ``dram_sectors`` / ``pcie_sectors`` — transfer units moved (the
      transaction counts, at 32 B sector / 128 B cacheline granularity);
    * ``dram_requested_bytes`` / ``pcie_requested_bytes`` — bytes the
      lanes logically demanded;
    * ``coalescing_efficiency`` — requested / moved over DRAM + PCIe;
      > 1 when broadcasts or the coalescing window merged requests;
    * ``warp_efficiency`` — active-lane fraction recorded via
      :meth:`~repro.gpusim.kernel.KernelLaunch.warp_occupancy` (1.0
      when the kernel recorded no per-lane work distribution).
    """
    out: dict[str, dict[str, float]] = {}
    lanes: dict[str, list[float]] = {}
    for record in engine.records[start:]:
        row = out.setdefault(
            record.name,
            {
                "dram_bytes": 0.0,
                "dram_sectors": 0.0,
                "dram_requested_bytes": 0.0,
                "pcie_bytes": 0.0,
                "pcie_sectors": 0.0,
                "pcie_requested_bytes": 0.0,
                "cache_hit_bytes": 0.0,
            },
        )
        active, slots = lanes.setdefault(record.name, [0.0, 0.0])
        lanes[record.name] = [
            active + record.cost.active_lanes,
            slots + record.cost.lane_slots,
        ]
        for traffic in record.cost.traffic.values():
            if traffic.residency == "device":
                row["dram_bytes"] += traffic.moved_bytes
                row["dram_sectors"] += traffic.sectors
                row["dram_requested_bytes"] += traffic.requested_bytes
            elif traffic.residency == "host":
                row["pcie_bytes"] += traffic.moved_bytes
                row["pcie_sectors"] += traffic.sectors
                row["pcie_requested_bytes"] += traffic.requested_bytes
            else:
                row["cache_hit_bytes"] += traffic.moved_bytes
    for name, row in out.items():
        moved = row["dram_bytes"] + row["pcie_bytes"]
        requested = row["dram_requested_bytes"] + row["pcie_requested_bytes"]
        row["coalescing_efficiency"] = requested / moved if moved else 1.0
        active, slots = lanes[name]
        row["warp_efficiency"] = active / slots if slots else 1.0
    return out


def verify_attribution(engine: "SimEngine") -> None:
    """Assert per-array bytes sum exactly to every launch's byte terms.

    Exact equality is safe: every charge path records integer-valued
    byte amounts, so the sums are float-exact.  Raises
    ``AssertionError`` naming the first launch that loses or
    double-counts a byte.
    """
    for index, record in enumerate(engine.records):
        sums = {"device_bytes": 0.0, "host_bytes": 0.0, "cached_bytes": 0.0}
        for traffic in record.cost.traffic.values():
            column = _RESIDENCY_COLUMN[traffic.residency]
            sums[column] += traffic.moved_bytes
        for column, total in sums.items():
            recorded = getattr(record.cost, column)
            if total != recorded:
                raise AssertionError(
                    f"launch {index} ({record.name}): attributed {column} "
                    f"{total} != recorded {recorded}"
                )


def top_array(
    table: dict[str, ArrayTraffic], residency: str | None = None
) -> str:
    """Name of the array that moved the most bytes (optionally filtered).

    Ties break alphabetically so the answer is deterministic; returns
    ``""`` when nothing matches.
    """
    best = ""
    best_bytes = -1.0
    for array in sorted(table):
        traffic = table[array]
        if residency is not None and traffic.residency != residency:
            continue
        if traffic.moved_bytes > best_bytes:
            best, best_bytes = array, traffic.moved_bytes
    return best


def arrays_since(engine: "SimEngine", start: int) -> dict[str, object]:
    """Span annotations for the launches recorded since ``start``.

    Traversal drivers call this at the end of each level span with the
    ``engine.num_launches`` captured before the level ran; the returned
    ``arrays`` dict (array -> moved bytes) and ``top_array`` land as
    span attributes, giving the per-level story its array axis.
    """
    totals: dict[str, float] = {}
    merged: dict[str, ArrayTraffic] = {}
    for table in kernel_array_attribution(engine, start).values():
        for array, traffic in table.items():
            totals[array] = totals.get(array, 0.0) + traffic.moved_bytes
            entry = merged.get(array)
            if entry is None:
                merged[array] = traffic.copy()
            else:
                entry.merge(traffic)
    return {
        "arrays": dict(sorted(totals.items())),
        "top_array": top_array(merged),
    }


def counters_report(engine: "SimEngine") -> str:
    """Text table of the emulated counters and the attribution split."""
    counters = emulated_counters(engine)
    attribution = kernel_array_attribution(engine)
    lines = [
        f"{'kernel':24s} {'dram MB':>9s} {'sectors':>10s} {'pcie MB':>9s} "
        f"{'lines':>8s} {'cache MB':>9s} {'coal':>6s} {'warp':>6s}"
    ]
    for name in sorted(counters):
        row = counters[name]
        lines.append(
            f"{name[:24]:24s} {row['dram_bytes'] / 1e6:9.3f} "
            f"{int(row['dram_sectors']):10d} "
            f"{row['pcie_bytes'] / 1e6:9.3f} {int(row['pcie_sectors']):8d} "
            f"{row['cache_hit_bytes'] / 1e6:9.3f} "
            f"{row['coalescing_efficiency']:6.2f} "
            f"{row['warp_efficiency']:6.2f}"
        )
    lines.append(
        f"{'kernel / array':36s} {'res':>6s} {'moved MB':>9s} "
        f"{'req MB':>9s} {'sectors':>10s}"
    )
    for name in sorted(attribution):
        for array in sorted(attribution[name]):
            traffic = attribution[name][array]
            lines.append(
                f"{(name + ' / ' + array)[:36]:36s} "
                f"{traffic.residency:>6s} "
                f"{traffic.moved_bytes / 1e6:9.3f} "
                f"{traffic.requested_bytes / 1e6:9.3f} "
                f"{int(traffic.sectors):10d}"
            )
    return "\n".join(lines)
