"""What-if replay: re-price a recorded run under parameter deltas.

A finished run is a complete pricing record — per-launch cost
snapshots on the single-GPU timeline, per-step byte/message maxima in
the cluster's :class:`~repro.dist.cluster.LevelCharge` sequence.
Because none of the tunable knobs (bandwidths, latencies, contention,
``cached_bw_ratio``, overlap) change the *functional* traversal, a
run's charges can be re-priced under new parameters without
re-traversing anything, in milliseconds instead of a full re-run.

Replays come in two flavours:

* **Exact** — bandwidth / latency / contention / ``cached_bw_ratio`` /
  launch-overhead / overlap changes.  The replay performs the same
  floating-point operations in the same order as an actual re-run
  under the changed parameters, so predicted equals actual
  *bit-for-bit* (asserted in tests).
* **Estimates** — wire-codec swaps (per-tier byte rescaling from the
  recorded per-codec trial sizes; run with ``record_wire=True``) and
  decode-cache budgets (LRU byte-reuse-distance hit curve recorded by
  :class:`~repro.core.listcache.DecodedListCache` with
  ``record_reuse=True``, applied additively to the bandwidth /
  instruction terms — the per-kernel ``max`` is not replayed, hence a
  stated tolerance rather than exactness).

:func:`rank_engine_whatifs` / :func:`rank_cluster_whatifs` run the
standard scenario panel and rank by predicted speedup — the "top
optimization targets" table the CLI, metrics dumps, and bench
trajectory surface.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = [
    "CLUSTER_KNOBS",
    "ENGINE_KNOBS",
    "WhatIfResult",
    "parse_sets",
    "rank_cluster_whatifs",
    "rank_engine_whatifs",
    "replay_cluster_seconds",
    "replay_engine_seconds",
    "top_target",
    "whatif_cache",
    "whatif_cluster",
    "whatif_engine",
    "whatif_section",
]

#: ``--set`` knobs on a distributed run.
CLUSTER_KNOBS = (
    "intra_gbs",
    "inter_gbs",
    "bandwidth_x",
    "contention",
    "inter_contention",
    "latency_us",
    "inter_latency_us",
    "overlap",
    "wire",
)

#: ``--set`` knobs on a single-GPU run.
ENGINE_KNOBS = (
    "dram_gbs",
    "pcie_gbs",
    "cached_bw_ratio",
    "launch_us",
)


@dataclass(frozen=True)
class WhatIfResult:
    """One scenario's predicted end-to-end time."""

    name: str
    baseline_seconds: float
    predicted_seconds: float
    #: True when the replay is bit-exact w.r.t. an actual re-run.
    exact: bool

    @property
    def speedup(self) -> float:
        """Baseline over predicted (>1 means the change helps)."""
        if self.predicted_seconds <= 0.0:
            return 0.0
        return self.baseline_seconds / self.predicted_seconds


# -- cluster replay -------------------------------------------------------


def _price_step(record: dict, topology, scale: dict | None = None) -> float:
    """Re-price one exchange step from its recorded byte/message maxima.

    Performs exactly the arithmetic of ``LinkTopology.step_breakdown``
    + ``_Step.finish``: per tier ``max(link, fabric) + messages *
    latency``, step time the max over tiers with strict-``>``
    preference for the earlier tier — bit-identical to a re-run on the
    same records.  ``scale`` multiplies a tier's bytes first (codec
    swaps; breaks exactness by construction).
    """
    step_seconds = 0.0
    for tier, row in record.items():
        bandwidth, contention, latency_s = topology.tier_params(tier)
        link_bytes = row["link_bytes"]
        total_bytes = row["total_bytes"]
        if scale is not None:
            factor = scale.get(tier, 1.0)
            link_bytes *= factor
            total_bytes *= factor
        link_time = link_bytes / bandwidth
        fabric_time = contention * total_bytes / bandwidth
        transfer = max(link_time, fabric_time)
        if transfer == 0.0:
            continue
        t = transfer + row["messages"] * latency_s
        if t > step_seconds:
            step_seconds = t
    return step_seconds


def _codec_scale(ex, codec_name: str) -> dict[str, float]:
    """Per-tier byte rescaling of one exchange under a codec swap.

    New tier bytes = the codec's recorded trial id payload plus the
    unchanged value/header bytes; the factor applies uniformly to the
    step maxima (the estimate: per-message skew is folded into the
    tier aggregate).
    """
    if codec_name in ex.trial_invalid:
        raise ValueError(
            f"codec {codec_name!r} cannot represent this run's messages"
        )
    trials = ex.trial_id_bytes.get(codec_name)
    if trials is None:
        if ex.messages == 0:
            return {}
        raise ValueError(
            f"no trial sizes for codec {codec_name!r}; rerun with "
            "record_wire=True (repro whatif does this automatically)"
        )
    out: dict[str, float] = {}
    for tier, old in ex.tier_bytes.items():
        if old <= 0:
            out[tier] = 1.0
            continue
        new = (
            trials[tier]
            + ex.tier_value_bytes[tier]
            + ex.tier_header_bytes[tier]
        )
        out[tier] = new / old
    return out


def replay_cluster_seconds(
    cluster,
    topology=None,
    overlap: bool | None = None,
    codec: str | None = None,
) -> float:
    """Re-price a recorded cluster run; returns the predicted clock.

    With no arguments this replays the run as recorded and reproduces
    ``cluster.clock`` bit-exactly (a replay self-check the tests pin).
    ``topology`` re-prices every exchange step and sync under different
    link parameters; ``overlap`` switches the level cost model;
    ``codec`` rescales exchange bytes per the recorded trial sizes.
    """
    topo = cluster.topology if topology is None else topology
    ov = cluster.overlap if overlap is None else overlap
    clock = 0.0
    for charge in cluster.charges:
        scale = _codec_scale(charge.exchange, codec) if codec else None
        ex_seconds = 0.0
        for rec in charge.exchange.step_records:
            ex_seconds += _price_step(rec, topo, scale)
        if ov:
            total = max(charge.expand_seconds, ex_seconds) + (
                charge.claim_seconds
            )
        else:
            total = (
                charge.expand_seconds + ex_seconds + charge.claim_seconds
            )
        if charge.sync_record is not None:
            # The sync carries scalars, not codec traffic: never scaled.
            sync = _price_step(charge.sync_record, topo)
            total = total + sync if sync else total
        clock += total
    return clock


def _parse_bool(raw) -> bool:
    text = str(raw).strip().lower()
    if text in ("1", "true", "on", "yes"):
        return True
    if text in ("0", "false", "off", "no"):
        return False
    raise ValueError(f"expected a boolean, got {raw!r}")


def whatif_cluster(cluster, sets: dict) -> WhatIfResult:
    """Predict a cluster run's clock under a ``--set`` knob dict."""
    topo = cluster.topology
    overlap: bool | None = None
    codec: str | None = None
    exact = True
    for key in sorted(sets):
        raw = sets[key]
        if key == "intra_gbs":
            topo = replace(topo, link_bandwidth=float(raw) * 1e9)
        elif key == "inter_gbs":
            topo = replace(topo, inter_bandwidth=float(raw) * 1e9)
        elif key == "bandwidth_x":
            topo = topo.scaled_bandwidth(float(raw))
        elif key == "contention":
            topo = replace(topo, contention=float(raw))
        elif key == "inter_contention":
            topo = replace(topo, inter_contention=float(raw))
        elif key == "latency_us":
            topo = replace(topo, message_latency_s=float(raw) * 1e-6)
        elif key == "inter_latency_us":
            topo = replace(topo, inter_latency_s=float(raw) * 1e-6)
        elif key == "overlap":
            overlap = _parse_bool(raw)
        elif key == "wire":
            codec = str(raw)
            exact = False
        else:
            raise ValueError(
                f"unknown knob {key!r}; cluster knobs: "
                f"{', '.join(CLUSTER_KNOBS)}"
            )
    predicted = replay_cluster_seconds(
        cluster, topology=topo, overlap=overlap, codec=codec
    )
    name = ",".join(f"{k}={sets[k]}" for k in sorted(sets))
    return WhatIfResult(
        name=name or "baseline",
        baseline_seconds=cluster.clock,
        predicted_seconds=predicted,
        exact=exact,
    )


def rank_cluster_whatifs(cluster) -> list[WhatIfResult]:
    """The standard scenario panel, ranked by predicted speedup."""
    base = cluster.clock
    topo = cluster.topology
    results = [
        WhatIfResult(
            name="intra_bandwidth x2",
            baseline_seconds=base,
            predicted_seconds=replay_cluster_seconds(
                cluster,
                topology=replace(
                    topo, link_bandwidth=topo.link_bandwidth * 2.0
                ),
            ),
            exact=True,
        )
    ]
    if topo.num_nodes > 1:
        inter_bw = topo.tier_params("inter")[0]
        results.append(
            WhatIfResult(
                name="inter_bandwidth x2",
                baseline_seconds=base,
                predicted_seconds=replay_cluster_seconds(
                    cluster,
                    topology=replace(
                        topo, inter_bandwidth=inter_bw * 2.0
                    ),
                ),
                exact=True,
            )
        )
    results.append(
        WhatIfResult(
            name=f"overlap {'off' if cluster.overlap else 'on'}",
            baseline_seconds=base,
            predicted_seconds=replay_cluster_seconds(
                cluster, overlap=not cluster.overlap
            ),
            exact=True,
        )
    )
    # Codec swaps need recorded trial sizes; codecs any message broke
    # (representation limits) are excluded per _codec_scale.
    trialed: set[str] = set()
    invalid: set[str] = set()
    for charge in cluster.charges:
        trialed.update(charge.exchange.trial_id_bytes)
        invalid.update(charge.exchange.trial_invalid)
    for name in sorted(trialed - invalid):
        results.append(
            WhatIfResult(
                name=f"wire {name}",
                baseline_seconds=base,
                predicted_seconds=replay_cluster_seconds(
                    cluster, codec=name
                ),
                exact=False,
            )
        )
    return sorted(results, key=lambda r: (-r.speedup, r.name))


# -- single-GPU replay ----------------------------------------------------


def replay_engine_seconds(engine, device=None, params=None) -> float:
    """Re-price an engine timeline; returns the predicted elapsed.

    Walks ``engine.records`` in launch order, re-pricing each cost
    snapshot through a :class:`~repro.gpusim.cost.CostModel` with the
    substituted device/params, accumulating exactly like the engine
    clock did (``acc += seconds`` per launch) — bit-identical to an
    actual re-run, because none of these knobs change the traversal.
    """
    from repro.gpusim.cost import CostModel

    model = CostModel(
        device if device is not None else engine.device,
        engine.memory,
        params if params is not None else engine.params,
    )
    acc = 0.0
    for rec in engine.records:
        acc += model.kernel_seconds(rec.cost)
    return acc


def whatif_engine(engine, sets: dict) -> WhatIfResult:
    """Predict a single-GPU run's elapsed under a ``--set`` knob dict."""
    device = engine.device
    params = engine.params
    for key in sorted(sets):
        raw = sets[key]
        if key == "dram_gbs":
            device = replace(device, dram_bandwidth=float(raw) * 1e9)
        elif key == "pcie_gbs":
            device = replace(device, link_bandwidth=float(raw) * 1e9)
        elif key == "cached_bw_ratio":
            params = replace(params, cached_bw_ratio=float(raw))
        elif key == "launch_us":
            device = replace(device, launch_overhead_s=float(raw) * 1e-6)
        else:
            raise ValueError(
                f"unknown knob {key!r}; engine knobs: "
                f"{', '.join(ENGINE_KNOBS)}"
            )
    predicted = replay_engine_seconds(engine, device=device, params=params)
    name = ",".join(f"{k}={sets[k]}" for k in sorted(sets))
    return WhatIfResult(
        name=name or "baseline",
        baseline_seconds=engine.elapsed_seconds,
        predicted_seconds=predicted,
        exact=True,
    )


def rank_engine_whatifs(engine) -> list[WhatIfResult]:
    """The standard single-GPU scenario panel, ranked by speedup."""
    base = engine.elapsed_seconds
    device = engine.device
    params = engine.params
    scenarios = [
        (
            "dram_bandwidth x2",
            replace(device, dram_bandwidth=device.dram_bandwidth * 2.0),
            params,
        ),
        (
            "pcie_bandwidth x2",
            replace(device, link_bandwidth=device.link_bandwidth * 2.0),
            params,
        ),
        (
            "cached_bw_ratio x2",
            device,
            replace(params, cached_bw_ratio=params.cached_bw_ratio * 2.0),
        ),
        (
            "zero launch overhead",
            replace(device, launch_overhead_s=0.0),
            params,
        ),
    ]
    results = [
        WhatIfResult(
            name=name,
            baseline_seconds=base,
            predicted_seconds=replay_engine_seconds(
                engine, device=dev, params=par
            ),
            exact=True,
        )
        for name, dev, par in scenarios
    ]
    return sorted(results, key=lambda r: (-r.speedup, r.name))


def whatif_cache(engine, cache, budget_bytes: int) -> WhatIfResult:
    """Predict the elapsed under a different decode-cache budget.

    Uses the LRU byte-reuse-distance log the cache recorded
    (``record_reuse=True``): a lookup hits at budget ``B`` iff its
    reuse footprint (distance + own size) fits.  The per-launch
    difference between the modeled hit edges at the new and current
    budgets (differencing out model bias) adjusts that launch's
    recorded cost — decode bytes/instructions swap for cached-stream
    bytes at the run's calibrated per-hit-edge rates — and the whole
    timeline is re-priced through the engine's cost model, per-kernel
    ``max`` included.  An estimate, not an exact replay: the per-edge
    rates are run averages, and eviction order under the new budget is
    modeled, not simulated.
    """
    from repro.core.listcache import DECODED_ELEM_BYTES
    from repro.gpusim.cost import CostModel

    if not getattr(cache, "reuse_log", None):
        raise ValueError(
            "cache recorded no reuse distances; build it with "
            "record_reuse=True"
        )
    base = engine.elapsed_seconds
    stats = cache.stats
    name = f"cache budget {budget_bytes}B"
    if stats.hit_edges <= 0:
        # No realized hits to calibrate the per-hit-edge rates against.
        return WhatIfResult(
            name=name,
            baseline_seconds=base,
            predicted_seconds=base,
            exact=False,
        )
    bytes_per_edge = stats.bytes_saved / stats.hit_edges
    instr_per_edge = stats.instr_saved / stats.hit_edges
    new_hits = cache.batch_hit_edges(budget_bytes)
    old_hits = cache.batch_hit_edges(cache.budget_bytes)
    model = CostModel(engine.device, engine.memory, engine.params)
    acc = 0.0
    for idx, rec in enumerate(engine.records):
        cost = rec.cost
        d = new_hits.get(idx, 0) - old_hits.get(idx, 0)
        if d:
            cost = replace(
                cost,
                device_bytes=max(
                    cost.device_bytes - d * bytes_per_edge, 0.0
                ),
                cached_bytes=max(
                    cost.cached_bytes + d * DECODED_ELEM_BYTES, 0.0
                ),
                instructions=max(
                    cost.instructions - d * instr_per_edge, 0.0
                ),
            )
        acc += model.kernel_seconds(cost)
    return WhatIfResult(
        name=name,
        baseline_seconds=base,
        predicted_seconds=acc,
        exact=False,
    )


# -- shared surfaces ------------------------------------------------------


def parse_sets(
    pairs: list[str], known: tuple[str, ...] | None = None
) -> dict[str, str]:
    """``["k=v", ...]`` (CLI ``--set``) to an ordered knob dict.

    Strict by design — the autotuner trusts this surface: a duplicated
    key raises (last-wins would silently drop the earlier setting), and
    with ``known`` given an unknown key raises up front, before any
    expensive run, naming the offending key.  The CLI maps these
    :class:`ValueError`\\ s to exit code 2.
    """
    out: dict[str, str] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        key = key.strip()
        value = value.strip()
        if not sep or not key or not value:
            raise ValueError(
                f"malformed --set {pair!r}; expected key=value"
            )
        if key in out:
            raise ValueError(
                f"duplicate --set key {key!r} "
                f"(already set to {out[key]!r})"
            )
        if known is not None and key not in known:
            raise ValueError(
                f"unknown knob {key!r}; knobs: {', '.join(known)}"
            )
        out[key] = value
    return out


def whatif_section(results: list[WhatIfResult]) -> dict:
    """The ``whatif`` metrics-dump section (numeric, diffable)."""
    return {
        r.name: {
            "predicted_seconds": r.predicted_seconds,
            "speedup": r.speedup,
            "exact": float(r.exact),
        }
        for r in results
    }


def top_target(results: list[WhatIfResult]) -> WhatIfResult | None:
    """Best predicted scenario (ties broken by name) or ``None``."""
    if not results:
        return None
    return sorted(results, key=lambda r: (-r.speedup, r.name))[0]
