"""Deterministic ring-buffer time-series on the simulated clock.

A long-running service needs *streaming* views of its own behaviour —
queries per second over the last window, mean queue depth, peak lane
occupancy — not one end-of-run total.  :class:`TimeSeries` is the
building block: a fixed-capacity ring of ``(t, value)`` points keyed on
the **simulated** clock (``engine.elapsed_seconds``), so two identical
drives record identical points and every rollup is byte-reproducible.

Design constraints, in order:

* **Bounded memory.**  Capacity is fixed at construction; recording
  point ``capacity + 1`` silently drops the oldest (``dropped`` counts
  how many).  A service alive for millions of sim-seconds keeps a
  constant footprint.
* **Monotone time.**  ``record`` requires non-decreasing timestamps —
  the simulated clock never goes backwards, and enforcing it here
  keeps :meth:`stats` a single reverse scan instead of a sort.
* **Windowed rollups.**  ``stats(window_s)`` aggregates the points in
  ``(now - window_s, now]``: count, sum, mean, max, and the two rates
  (events/sec and value/sec).  This is what SLO burn rates and the
  live dashboard read.
* **Byte-stable serialization.**  ``to_dict`` is plain floats in
  chronological order; dumped through
  :func:`repro.obs.metrics.dump_metrics` it is byte-identical across
  identical runs.
"""

from __future__ import annotations

__all__ = ["TimeSeries"]


class TimeSeries:
    """Fixed-capacity ring of ``(t, value)`` samples, monotone in ``t``."""

    __slots__ = ("capacity", "_t", "_v", "_start", "_len", "_dropped")

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._t: list[float] = [0.0] * self.capacity
        self._v: list[float] = [0.0] * self.capacity
        self._start = 0  # index of the oldest live point
        self._len = 0
        self._dropped = 0

    # -- recording ----------------------------------------------------

    def record(self, t: float, value: float = 1.0) -> None:
        """Append one sample; ``t`` must not precede the last sample."""
        t = float(t)
        if self._len and t < self.last_t:
            raise ValueError(
                f"time went backwards: {t} < {self.last_t}"
            )
        idx = (self._start + self._len) % self.capacity
        self._t[idx] = t
        self._v[idx] = float(value)
        if self._len < self.capacity:
            self._len += 1
        else:  # ring full: the slot we just wrote was the oldest point
            self._start = (self._start + 1) % self.capacity
            self._dropped += 1

    # -- introspection ------------------------------------------------

    def __len__(self) -> int:
        return self._len

    @property
    def dropped(self) -> int:
        """Samples evicted by the ring since construction."""
        return self._dropped

    @property
    def last_t(self) -> float:
        """Timestamp of the newest sample (0.0 when empty)."""
        if not self._len:
            return 0.0
        return self._t[(self._start + self._len - 1) % self.capacity]

    def points(self) -> list[tuple[float, float]]:
        """Live samples in chronological order."""
        return [
            (self._t[(self._start + i) % self.capacity],
             self._v[(self._start + i) % self.capacity])
            for i in range(self._len)
        ]

    # -- rollups ------------------------------------------------------

    def stats(self, window_s: float, now: float | None = None) -> dict:
        """Aggregate the samples in ``(now - window_s, now]``.

        ``now`` defaults to the newest sample's timestamp.  Returns a
        numeric-only dict (diffable by ``repro compare``): ``count``,
        ``sum``, ``mean``, ``max``, ``rate`` (count / window) and
        ``value_rate`` (sum / window).  Samples newer than ``now`` are
        excluded, so replaying a prefix of a run reproduces the exact
        rollup that run saw at that instant.
        """
        if window_s <= 0:
            raise ValueError(f"window_s must be > 0, got {window_s}")
        if now is None:
            now = self.last_t
        lo = now - window_s
        count = 0
        total = 0.0
        peak = 0.0
        # Reverse scan: points are time-ordered, so stop at the first
        # sample at or before the window's left edge.
        for i in range(self._len - 1, -1, -1):
            idx = (self._start + i) % self.capacity
            t = self._t[idx]
            if t > now:
                continue
            if t <= lo:
                break
            v = self._v[idx]
            count += 1
            total += v
            if count == 1 or v > peak:
                peak = v
        return {
            "count": float(count),
            "sum": total,
            "mean": total / count if count else 0.0,
            "max": peak,
            "rate": count / window_s,
            "value_rate": total / window_s,
        }

    # -- serialization ------------------------------------------------

    def to_dict(self, max_points: int | None = None) -> dict:
        """Canonical numeric dump (newest ``max_points`` samples)."""
        pts = self.points()
        if max_points is not None:
            pts = pts[-max_points:]
        return {
            "capacity": float(self.capacity),
            "dropped": float(self._dropped),
            "count": float(self._len),
            "t": [p[0] for p in pts],
            "v": [p[1] for p in pts],
        }
