"""Service-side observability: sketches, time-series, SLOs, events.

:class:`ServiceTelemetry` is the per-service instrument cluster.  The
:class:`~repro.serve.service.GraphService` calls one hook per lifecycle
point (submit, reject, cache hit/evict, expire, wave, done, epoch) and
this module fans each call out to:

* **quantile sketches** (:mod:`repro.obs.sketch`) for per-query
  latency, queue wait, and wave width distributions;
* **ring-buffer time-series** (:mod:`repro.obs.timeseries`) for
  windowed QPS, lane occupancy, and queue depth on the simulated
  clock;
* the **SLO engine** (:mod:`repro.obs.slo`) judging every terminal
  outcome against the configured burn-rate objectives;
* the **event log** — one canonical JSONL line per lifecycle point,
  labelled with source class, epoch, and outcome.

The cluster is deliberately *separate* from the engine's
:class:`~repro.obs.metrics.MetricsRegistry`: the registry feeds the
byte-stable bench trajectory, while telemetry feeds the ``service``
metrics section, the live dashboard, and ``repro top``.  Keeping them
apart means adding an SLO never perturbs a committed bench baseline.

Everything is keyed on the simulated clock, so two identical drives
produce byte-identical sketches, sections, and event logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.sketch import QuantileSketch
from repro.obs.slo import EventLog, SLOEngine, SLOSpec
from repro.obs.timeseries import TimeSeries

__all__ = ["ServiceTelemetry"]

#: Relative accuracy of every service sketch (documented bound: each
#: reported percentile is within 1% of the exact order statistic).
SKETCH_ACCURACY = 0.01

#: Default window for dashboard QPS/occupancy rollups (simulated
#: seconds; sim runs at device scale live in the microsecond range).
DEFAULT_WINDOW_S = 1e-6


@dataclass
class ServiceTelemetry:
    """Instrument cluster for one :class:`GraphService` lifetime."""

    specs: tuple[SLOSpec, ...] = ()
    events: EventLog = field(default_factory=EventLog)
    window_s: float = DEFAULT_WINDOW_S

    def __post_init__(self) -> None:
        self.slo = SLOEngine(self.specs)
        self.latency = QuantileSketch(SKETCH_ACCURACY)
        self.queue_wait = QuantileSketch(SKETCH_ACCURACY)
        self.wave_lanes = QuantileSketch(SKETCH_ACCURACY)
        #: One point per served query at its completion time.
        self.completions = TimeSeries(capacity=8192)
        #: One point per wave: distinct sources occupying lanes.
        self.lanes = TimeSeries(capacity=2048)
        #: Queue depth sampled after every submit and wave.
        self.depth = TimeSeries(capacity=8192)
        #: outcome -> count and (source_class, outcome) -> count.
        self.outcomes: dict[str, int] = {}
        self.by_class: dict[tuple[str, str], int] = {}
        self.epoch = ""

    # -- internals ----------------------------------------------------

    def _terminal(
        self, t: float, outcome: str, source_class: str,
        latency_s: float | None = None,
    ) -> None:
        self.outcomes[outcome] = self.outcomes.get(outcome, 0) + 1
        key = (source_class, outcome)
        self.by_class[key] = self.by_class.get(key, 0) + 1
        if outcome in ("done", "cached"):
            self.completions.record(t, 1.0)
        for name, firing in self.slo.observe(
            t, outcome=outcome, latency_s=latency_s
        ):
            state = self.slo.states[name]
            self.events.emit(
                t, "slo", slo=name,
                state="alerting" if firing else "ok",
                burn_long=state.burn(state.spec.long_window_s, t),
                burn_short=state.burn(state.spec.short_window_s, t),
            )

    # -- lifecycle hooks (called by GraphService) ---------------------

    def on_epoch(self, t: float, epoch: str) -> None:
        self.epoch = epoch
        self.events.emit(t, "epoch", epoch=epoch)
        # Declare every SLO up front so a replayed log knows the full
        # spec set even when a spec never changes state.
        for name in sorted(self.slo.states):
            self.events.emit(
                t, "slo", slo=name, state="ok",
                burn_long=0.0, burn_short=0.0,
            )

    def on_submit(
        self, t: float, qid: int, source: int, source_class: str,
        deadline_s: float | None, depth: int,
    ) -> None:
        self.events.emit(
            t, "admit", qid=qid, src=source, cls=source_class,
            deadline_s=deadline_s if deadline_s is not None else -1.0,
        )
        self.depth.record(t, float(depth))

    def on_reject(
        self, t: float, qid: int, source: int, source_class: str,
    ) -> None:
        self.events.emit(t, "reject", qid=qid, src=source, cls=source_class)
        self._terminal(t, "rejected", source_class)

    def on_cache_hit(
        self, t: float, qid: int, source: int, source_class: str,
    ) -> None:
        self.events.emit(t, "cache_hit", qid=qid, src=source,
                         cls=source_class)
        self.latency.add(0.0)
        self.queue_wait.add(0.0)
        self._terminal(t, "cached", source_class, latency_s=0.0)

    def on_cache_evict(self, t: float, source: int) -> None:
        self.events.emit(t, "cache_evict", src=source)

    def on_expire(
        self, t: float, qid: int, source: int, source_class: str,
        waited_s: float,
    ) -> None:
        self.events.emit(t, "expire", qid=qid, src=source, cls=source_class,
                         waited_s=waited_s)
        self._terminal(t, "expired", source_class)

    def on_wave(
        self, t: float, wave: int, queries: int, lanes: int,
        seconds: float, depth: int,
    ) -> None:
        self.wave_lanes.add(float(lanes))
        self.lanes.record(t, float(lanes))
        self.depth.record(t, float(depth))
        self.events.emit(t, "wave", wave=wave, queries=queries,
                         lanes=lanes, seconds=seconds)

    def on_done(
        self, t: float, qid: int, source: int, source_class: str,
        wave: int, latency_s: float, queue_wait_s: float,
    ) -> None:
        self.latency.add(latency_s)
        self.queue_wait.add(queue_wait_s)
        self.events.emit(t, "done", qid=qid, src=source, cls=source_class,
                         wave=wave, latency_s=latency_s, wait_s=queue_wait_s)
        self._terminal(t, "done", source_class, latency_s=latency_s)

    # -- derived views ------------------------------------------------

    @property
    def total(self) -> int:
        return sum(self.outcomes.values())

    @property
    def served(self) -> int:
        return self.outcomes.get("done", 0) + self.outcomes.get("cached", 0)

    @property
    def miss_rate(self) -> float:
        """Fraction of terminal outcomes shed (rejected or expired)."""
        if not self.total:
            return 0.0
        missed = (self.outcomes.get("rejected", 0)
                  + self.outcomes.get("expired", 0))
        return missed / self.total

    @property
    def hit_rate(self) -> float:
        """Result-LRU hits over served queries."""
        if not self.served:
            return 0.0
        return self.outcomes.get("cached", 0) / self.served

    def windowed_qps(self, now: float) -> float:
        """Served queries per simulated second over the last window."""
        return self.completions.stats(self.window_s, now=now)["rate"]

    def lane_occupancy(self) -> float:
        """Mean lanes per wave over the full run, as a fraction of 64."""
        from repro.traversal.msbfs import MAX_SOURCES

        if not self.wave_lanes.count:
            return 0.0
        return self.wave_lanes.mean / MAX_SOURCES

    # -- export -------------------------------------------------------

    def section(self, now: float) -> dict:
        """The ``service`` metrics section (numeric-only, diffable)."""
        by_class: dict[str, dict[str, float]] = {}
        for (cls, outcome), n in sorted(self.by_class.items()):
            by_class.setdefault(cls, {})[outcome] = float(n)
        return {
            "latency": self.latency.summary(),
            "queue_wait": self.queue_wait.summary(),
            "wave_lanes": self.wave_lanes.summary(),
            "outcomes": {k: float(v) for k, v in sorted(self.outcomes.items())},
            "by_class": by_class,
            "rates": {
                "miss_rate": self.miss_rate,
                "hit_rate": self.hit_rate,
                "lane_occupancy": self.lane_occupancy(),
                "windowed_qps": self.windowed_qps(now),
                "window_s": self.window_s,
            },
            "slo": self.slo.section(now),
            "events": {
                "count": float(len(self.events)),
                "rotations": float(self.events.rotations),
            },
        }
