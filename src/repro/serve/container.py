"""On-disk graph container: encode once, serve many (mmap-backed).

The serving story of the paper (Sec. VIII-F) assumes compression is an
*offline* step: a graph is encoded once and then resident in device
memory for the lifetime of the query service.  The npz files from
:mod:`repro.formats.io` are the archival form, but opening one means
zlib-decompressing every array — O(edges) work per process start.  The
container layout here trades a little disk for O(1) opens:

* ``<base>.offsets`` — the CSR offsets, raw little-endian int64.
* ``<base>.graph``   — the neighbour payload, raw bytes (8 B per id).
* ``<base>.meta``    — canonical JSON: shape, direction, name, and the
  two CRC32 stamps of the PR 4 integrity contract.

Because the array files are raw and uncompressed, :func:`open_container`
memory-maps them read-only: the OS pages neighbour lists in on first
touch and shares the mapping across every service process on the host.
Saving the same graph twice produces byte-identical files (canonical
JSON, fixed field order), so containers can be content-addressed and
diffed in CI.

The **epoch** is the container's identity: a 16-hex-digit digest of the
metadata and payload CRCs.  Two containers with equal epochs hold the
same graph bit-for-bit; the serving layer keys its result cache on it so
a cache entry can never outlive the graph it was computed on.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

import numpy as np

from repro.core.errors import CorruptMetadataError, CorruptStreamError
from repro.formats.graph import Graph
from repro.formats.integrity import (
    arrays_crc32,
    parse_payload_words,
    validate_csr_arrays,
    verify_csr_crcs,
)

__all__ = [
    "CONTAINER_MAGIC",
    "CONTAINER_VERSION",
    "GraphContainer",
    "container_paths",
    "save_container",
    "open_container",
    "is_container",
]

#: Identifies ``.meta`` files as serve containers (format + layout rev).
CONTAINER_MAGIC = "repro.container/1"

#: Bump on breaking layout changes; readers reject unknown versions.
CONTAINER_VERSION = 1

#: ``.meta`` keys every container carries; absence is corruption (the
#: container format never existed without CRC stamps, unlike npz).
_REQUIRED_META = (
    "magic",
    "version",
    "num_nodes",
    "num_edges",
    "directed",
    "name",
    "payload_crc",
    "meta_crc",
    "epoch",
)


@dataclass(frozen=True)
class GraphContainer:
    """An immutable CSR graph in container form (possibly mmap-backed).

    ``payload`` is the raw neighbour bytes — the wire/disk shape — and
    :attr:`elist` is its zero-copy int64 view.  Instances are frozen:
    the epoch contract only holds if nobody mutates a resident graph.
    """

    vlist: np.ndarray
    payload: np.ndarray
    directed: bool
    name: str
    payload_crc: int
    meta_crc: int

    @property
    def num_nodes(self) -> int:
        return int(self.vlist.shape[0]) - 1

    @property
    def num_edges(self) -> int:
        return int(self.payload.shape[0]) // 8

    @property
    def elist(self) -> np.ndarray:
        """Neighbour ids: zero-copy int64 view of the payload bytes."""
        return parse_payload_words(self.payload, fmt="container")

    @property
    def epoch(self) -> str:
        """Content identity: 16 hex digits over both CRC stamps.

        Equal epochs ⟺ equal graph bytes; the serving layer keys its
        result cache ``(source, epoch)`` so entries cannot survive a
        graph swap.
        """
        return f"{self.meta_crc:08x}{self.payload_crc:08x}"

    @classmethod
    def from_graph(cls, graph: Graph) -> "GraphContainer":
        """Build a container image from an in-memory graph (stamps CRCs)."""
        payload = np.frombuffer(
            np.ascontiguousarray(graph.elist, dtype="<i8").tobytes(),
            dtype=np.uint8,
        )
        vlist = np.ascontiguousarray(graph.vlist, dtype="<i8")
        return cls(
            vlist=vlist,
            payload=payload,
            directed=bool(graph.directed),
            name=graph.name,
            payload_crc=arrays_crc32(payload),
            meta_crc=arrays_crc32(
                vlist, int(bool(graph.directed)), CONTAINER_VERSION
            ),
        )

    def verify_integrity(self) -> None:
        """Check both CRC stamps against the current bytes (typed errors)."""
        verify_csr_crcs(
            self.vlist,
            self.payload,
            payload_crc=self.payload_crc,
            meta_crc=self.meta_crc,
            meta_words=(int(self.directed), CONTAINER_VERSION),
            fmt="container",
        )

    def validate(self) -> None:
        """Structural validation: offsets monotone, neighbour ids in range."""
        validate_csr_arrays(self.vlist, self.elist, fmt="container")

    def to_graph(self) -> Graph:
        """Materialise a :class:`Graph` (copies out of any mmap)."""
        return Graph(
            vlist=np.array(self.vlist, dtype=np.int64),
            elist=np.array(self.elist, dtype=np.int64),
            directed=self.directed,
            name=self.name,
        )

    def meta_dict(self) -> dict:
        """The ``.meta`` JSON payload (deterministic field values)."""
        return {
            "magic": CONTAINER_MAGIC,
            "version": CONTAINER_VERSION,
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "directed": self.directed,
            "name": self.name,
            "payload_crc": self.payload_crc,
            "meta_crc": self.meta_crc,
            "epoch": self.epoch,
        }


def container_paths(base: str | os.PathLike) -> tuple[str, str, str]:
    """The ``(.offsets, .graph, .meta)`` paths of a container base."""
    base = os.fspath(base)
    return (base + ".offsets", base + ".graph", base + ".meta")


def save_container(graph: Graph, base: str | os.PathLike) -> GraphContainer:
    """Encode ``graph`` into the three container files at ``base``.

    Writing is deterministic: re-saving the same graph yields
    byte-identical files (raw C-order arrays, canonical JSON meta), so
    a container round-trip can be verified with ``cmp`` in CI.
    Returns the in-memory image that was written.
    """
    container = GraphContainer.from_graph(graph)
    offsets_path, graph_path, meta_path = container_paths(base)
    container.vlist.tofile(offsets_path)
    container.payload.tofile(graph_path)
    with open(meta_path, "w") as fh:
        json.dump(container.meta_dict(), fh, sort_keys=True, indent=2)
        fh.write("\n")
    return container


def is_container(base: str | os.PathLike) -> bool:
    """True when ``base`` names a saved container (its ``.meta`` exists)."""
    return os.path.exists(container_paths(base)[2])


def _load_meta(meta_path: str) -> dict:
    try:
        with open(meta_path) as fh:
            meta = json.load(fh)
    except OSError as exc:
        raise CorruptMetadataError(
            f"cannot read container meta: {exc}", fmt="container"
        ) from exc
    except json.JSONDecodeError as exc:
        raise CorruptMetadataError(
            f"container meta is not valid JSON: {exc}", fmt="container"
        ) from exc
    if not isinstance(meta, dict):
        raise CorruptMetadataError(
            "container meta must be a JSON object", fmt="container"
        )
    missing = [k for k in _REQUIRED_META if k not in meta]
    if missing:
        raise CorruptMetadataError(
            f"container meta is missing keys: {', '.join(missing)}",
            fmt="container",
        )
    if meta["magic"] != CONTAINER_MAGIC:
        raise CorruptMetadataError(
            f"not a graph container (magic {meta['magic']!r})",
            fmt="container",
        )
    if int(meta["version"]) != CONTAINER_VERSION:
        raise CorruptMetadataError(
            f"unsupported container version {int(meta['version'])} "
            f"(expected {CONTAINER_VERSION})",
            fmt="container",
        )
    return meta


def open_container(
    base: str | os.PathLike, *, mmap: bool = True, verify: bool = True
) -> GraphContainer:
    """Open a saved container in O(1): map the arrays, parse the meta.

    ``mmap=True`` (the default) memory-maps both array files read-only;
    nothing is decompressed or copied, so a multi-GB graph opens in
    microseconds and pages in lazily.  ``verify=True`` additionally
    re-hashes both CRC stamps and structurally validates the arrays —
    an O(bytes) scan that forces every page once, so services that want
    lazy paging can defer it and call
    :meth:`GraphContainer.verify_integrity` on their own schedule.

    All failure modes raise the typed PR 4 errors:
    :class:`~repro.core.errors.CorruptMetadataError` for meta/offsets
    problems, :class:`~repro.core.errors.CorruptStreamError` for
    payload problems.
    """
    offsets_path, graph_path, meta_path = container_paths(base)
    meta = _load_meta(meta_path)
    num_nodes = int(meta["num_nodes"])
    num_edges = int(meta["num_edges"])
    if num_nodes < 0 or num_edges < 0:
        raise CorruptMetadataError(
            f"negative shape in container meta: num_nodes={num_nodes}, "
            f"num_edges={num_edges}",
            fmt="container",
        )

    want_offsets = 8 * (num_nodes + 1)
    try:
        have_offsets = os.path.getsize(offsets_path)
        have_payload = os.path.getsize(graph_path)
    except OSError as exc:
        raise CorruptMetadataError(
            f"container array file missing: {exc}", fmt="container"
        ) from exc
    if have_offsets != want_offsets:
        raise CorruptMetadataError(
            f"offsets file is {have_offsets} bytes, expected {want_offsets} "
            f"for {num_nodes} vertices",
            fmt="container",
        )
    want_payload = 8 * num_edges
    if have_payload != want_payload:
        raise CorruptStreamError(
            f"payload file is {have_payload} bytes, expected {want_payload} "
            f"for {num_edges} neighbours",
            fmt="container",
        )

    if mmap:
        vlist = np.memmap(offsets_path, dtype="<i8", mode="r")
        payload = np.memmap(graph_path, dtype=np.uint8, mode="r")
    else:
        vlist = np.fromfile(offsets_path, dtype="<i8")
        payload = np.fromfile(graph_path, dtype=np.uint8)

    container = GraphContainer(
        vlist=vlist,
        payload=payload,
        directed=bool(meta["directed"]),
        name=str(meta["name"]),
        payload_crc=int(meta["payload_crc"]),
        meta_crc=int(meta["meta_crc"]),
    )
    if container.epoch != str(meta["epoch"]):
        # The epoch is derived from the CRCs; a mismatch means the meta
        # file itself is internally inconsistent (hand-edited).
        raise CorruptMetadataError(
            f"container epoch {meta['epoch']!r} does not match its CRC "
            f"stamps ({container.epoch})",
            fmt="container",
        )
    if verify:
        container.verify_integrity()
        container.validate()
    return container
