"""Synthetic closed-loop client for :class:`~repro.serve.GraphService`.

Benchmarking a serving layer needs a *workload*, not a single call: a
stream of queries with realistic skew (hot sources repeat), mixed
deadlines, and bursty arrival.  This module provides a deterministic
one — seeded numpy RNG, simulated-clock timing — so two runs of the
same recipe produce byte-identical metrics, which is what lets
``queries/sec`` become a diffable bench column.

The headline number is the **batching speedup**: the same query list is
also replayed one :func:`~repro.traversal.bfs.bfs` at a time against a
fresh backend (same format, same decoded-list cache budget), and the
ratio of simulated times is reported.  The paper's premise says this
should be large — a 64-wide wave decodes each union-frontier list once
where 64 sequential runs decode it up to 64 times.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.serve.service import GraphService

__all__ = [
    "DriveReport",
    "make_query_stream",
    "make_labeled_stream",
    "parse_deadline_mix",
    "drive",
    "sequential_seconds",
    "with_sequential_baseline",
]


@dataclass(frozen=True)
class DriveReport:
    """Outcome of one closed-loop serve run (simulated-clock timings)."""

    num_queries: int
    #: Per-status counts ("done"/"cached"/"rejected"/"expired").
    counts: dict
    num_waves: int
    elapsed_seconds: float
    #: Served queries (done + cached) per simulated second, batched.
    qps: float
    #: The same stream replayed one bfs() at a time (0 when skipped).
    sequential_seconds: float = 0.0
    qps_sequential: float = 0.0

    @property
    def speedup_vs_sequential(self) -> float:
        """Batched-over-sequential throughput ratio (0 when no baseline)."""
        if self.sequential_seconds <= 0 or self.elapsed_seconds <= 0:
            return 0.0
        return self.sequential_seconds / self.elapsed_seconds


def make_labeled_stream(
    num_nodes: int,
    num_queries: int,
    *,
    hot_fraction: float = 0.5,
    hot_set_size: int = 8,
    seed: int = 7,
) -> tuple[np.ndarray, list[str]]:
    """Deterministic skewed source stream with per-query class labels.

    A ``hot_fraction`` share of queries draws from a small fixed hot
    set (exercising lane coalescing and the result LRU); the rest is
    uniform over all vertices.  The second return value labels each
    query ``"hot"`` or ``"cold"`` — the telemetry ``source_class``
    dimension, so the dashboard can attribute misses per workload.
    """
    if num_queries <= 0:
        raise ValueError(f"num_queries must be > 0, got {num_queries}")
    if not (0.0 <= hot_fraction <= 1.0):
        raise ValueError(f"hot_fraction must be in [0, 1], got {hot_fraction}")
    rng = np.random.default_rng([seed, num_nodes, num_queries])
    hot = rng.choice(num_nodes, size=min(hot_set_size, num_nodes),
                     replace=False)
    is_hot = rng.random(num_queries) < hot_fraction
    uniform = rng.integers(0, num_nodes, size=num_queries)
    hot_pick = hot[rng.integers(0, hot.shape[0], size=num_queries)]
    sources = np.where(is_hot, hot_pick, uniform).astype(np.int64)
    classes = ["hot" if flag else "cold" for flag in is_hot.tolist()]
    return sources, classes


def make_query_stream(
    num_nodes: int,
    num_queries: int,
    *,
    hot_fraction: float = 0.5,
    hot_set_size: int = 8,
    seed: int = 7,
) -> np.ndarray:
    """Sources only (see :func:`make_labeled_stream` for the labels)."""
    sources, _ = make_labeled_stream(
        num_nodes, num_queries,
        hot_fraction=hot_fraction, hot_set_size=hot_set_size, seed=seed,
    )
    return sources


def parse_deadline_mix(spec: str) -> tuple[float | None, ...]:
    """Parse a deadline mix ("none,0.5,none", in ms) into second budgets.

    Raises ``ValueError`` on malformed entries; the CLI and the recipe
    validator both route through here so the two paths cannot drift.
    """
    mix: list[float | None] = []
    for part in spec.split(","):
        part = part.strip().lower()
        if part in ("none", "inf", ""):
            mix.append(None)
        else:
            try:
                value = float(part)
            except ValueError:
                raise ValueError(
                    f"deadline mix entries must be numbers (ms) or "
                    f"'none', got {part!r}"
                ) from None
            if value < 0:
                raise ValueError(
                    f"deadline mix entries must be >= 0, got {part}"
                )
            mix.append(value / 1e3)
    return tuple(mix) if mix else (None,)


def drive(
    service: GraphService,
    sources: np.ndarray,
    *,
    deadline_mix: tuple[float | None, ...] = (None,),
    burst: int = 16,
    classes: list[str] | None = None,
    frame_cb=None,
) -> DriveReport:
    """Run a closed-loop client: submit in bursts, drain between them.

    ``deadline_mix`` cycles per query (``None`` = no deadline), so a
    mixed-deadline run interleaves patient and impatient clients.
    Submissions arrive ``burst`` at a time; after each burst the
    service steps one wave, and the queue fully drains at the end —
    closed loop, no unbounded backlog.

    ``classes`` (from :func:`make_labeled_stream`) labels each query's
    telemetry ``source_class``; ``frame_cb(service)`` fires after every
    wave — the hook the live ``--monitor`` dashboard renders from.
    """
    sources = np.asarray(sources, dtype=np.int64)
    if burst < 1:
        raise ValueError(f"burst must be >= 1, got {burst}")
    if classes is not None and len(classes) != sources.shape[0]:
        raise ValueError(
            f"classes length {len(classes)} != queries {sources.shape[0]}"
        )
    for i, source in enumerate(sources.tolist()):
        service.submit(
            source,
            deadline_s=deadline_mix[i % len(deadline_mix)],
            source_class=classes[i] if classes is not None else "any",
        )
        if (i + 1) % burst == 0:
            service.step_wave()
            if frame_cb is not None:
                frame_cb(service)
    while service.num_pending:
        service.step_wave()
        if frame_cb is not None:
            frame_cb(service)

    counts = service.counts()
    served = counts.get("done", 0) + counts.get("cached", 0)
    elapsed = service.clock
    report = DriveReport(
        num_queries=int(sources.shape[0]),
        counts=counts,
        num_waves=service.num_waves,
        elapsed_seconds=elapsed,
        qps=served / elapsed if elapsed > 0 else 0.0,
    )
    metrics = service.backend.engine.metrics
    metrics.set_gauge("serve.qps", report.qps)
    metrics.set_gauge("serve.elapsed_seconds", elapsed)
    return report


def sequential_seconds(
    make_backend, sources: np.ndarray
) -> float:
    """Replay ``sources`` one :func:`bfs` at a time; total simulated time.

    ``make_backend`` is a zero-argument factory building a *fresh*
    backend of the same format and cache budget as the service — the
    fair baseline a non-batching server would run.  The decoded-list
    cache (if any) persists across the replayed queries, exactly as it
    would in a sequential server, so the measured gap is the batching
    win, not a cache handicap.
    """
    from repro.traversal.bfs import bfs

    backend = make_backend()
    total = 0.0
    # bfs() resets the engine timeline per call (its sim_seconds is the
    # whole run), but the decoded-list cache *contents* persist across
    # calls — as they would in a real sequential server.
    for source in np.asarray(sources, dtype=np.int64).tolist():
        total += bfs(backend, int(source)).sim_seconds
    return total


def with_sequential_baseline(
    report: DriveReport, service: GraphService, make_backend, sources
) -> DriveReport:
    """Attach the sequential-replay baseline to a drive report."""
    seq = sequential_seconds(make_backend, sources)
    counts = report.counts
    served = counts.get("done", 0) + counts.get("cached", 0)
    out = DriveReport(
        num_queries=report.num_queries,
        counts=counts,
        num_waves=report.num_waves,
        elapsed_seconds=report.elapsed_seconds,
        qps=report.qps,
        sequential_seconds=seq,
        qps_sequential=served / seq if seq > 0 else 0.0,
    )
    metrics = service.backend.engine.metrics
    metrics.set_gauge("serve.qps_sequential", out.qps_sequential)
    metrics.set_gauge("serve.speedup_vs_sequential", out.speedup_vs_sequential)
    return out
