"""Graph-as-a-service: one resident graph, batched traversal queries.

The paper's motivating deployment (Sec. I, VIII-F) is a query service:
the compressed graph is encoded once, resident in device memory, and
answers a stream of point queries — "BFS levels from vertex s", "is t
reachable from s" — arriving concurrently from many clients.  Running
each query as an independent :func:`~repro.traversal.bfs.bfs` wastes
the defining property of that workload: concurrent frontiers overlap
heavily, so the expensive compressed-list decodes are repeated up to
64×.

:class:`GraphService` is the batching layer that recovers the overlap:

* **One resident graph per epoch.**  The service owns a single
  immutable graph identified by its content-hash *epoch* (see
  :mod:`repro.serve.container`).  Every cached artifact is keyed by it,
  so results can never leak across graph versions.
* **Admission control.**  ``submit`` enforces a bounded pending queue
  (overload sheds load at the door, not after burning decode work) and
  per-query deadlines measured on the simulated clock.
* **Wave batching.**  ``step_wave`` drains the queue in FIFO order into
  one :func:`~repro.traversal.msbfs.msbfs` wave of at most 64 *distinct*
  sources; concurrent queries for the same source coalesce into one
  mask lane and always join the wave.  Expired queries are answered
  ``expired`` without ever occupying a lane.
* **Result LRU.**  Completed level arrays are cached ``(source,
  epoch)``; repeat queries for hot sources are answered without
  touching the device at all.

Every result is bit-identical to a stand-alone single-source
:func:`~repro.traversal.bfs.bfs` — batching, caching, and wave
boundaries are invisible to correctness (asserted by the test suite).
All activity flows through the :mod:`repro.obs` stack: waves appear as
tracer spans, admission/cache/wave totals as registry counters, so
``repro compare`` can diff serving behaviour like any other run.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field

import numpy as np

from repro.formats.graph import Graph
from repro.serve.container import GraphContainer
from repro.serve.telemetry import ServiceTelemetry
from repro.traversal.backends import GraphBackend
from repro.traversal.msbfs import MAX_SOURCES, msbfs

__all__ = ["QueryResult", "GraphService"]

#: Default bound on queries waiting for a lane (admission control).
DEFAULT_MAX_PENDING = 1024

#: Default number of ``(source, epoch)`` level arrays kept in the LRU.
DEFAULT_RESULT_CACHE = 256


@dataclass(frozen=True)
class QueryResult:
    """Outcome of one submitted query.

    ``status`` is one of:

    * ``"done"``    — traversed in wave ``wave``; ``levels`` is set.
    * ``"cached"``  — answered from the result LRU at submit time.
    * ``"rejected"``— shed at admission (queue full); never enqueued.
    * ``"expired"`` — deadline passed before a lane was free; dropped
      without occupying one.
    """

    qid: int
    source: int
    status: str
    levels: np.ndarray | None = None
    #: Index of the wave that served it (-1 when no wave ran it).
    wave: int = -1
    submitted_s: float = 0.0
    completed_s: float = 0.0
    #: Client-provided workload label (telemetry dimension).
    source_class: str = "any"

    @property
    def ok(self) -> bool:
        return self.status in ("done", "cached")

    def reaches(self, target: int) -> bool:
        """Reachability view of the level answer (
        ``True`` iff ``target`` was reached from ``source``)."""
        if self.levels is None:
            raise ValueError(f"query {self.qid} has no levels ({self.status})")
        return int(self.levels[target]) >= 0


@dataclass
class _Pending:
    qid: int
    source: int
    #: Absolute simulated-clock deadline (None = never expires).
    deadline_s: float | None
    submitted_s: float = 0.0
    source_class: str = "any"


@dataclass
class GraphService:
    """A resident graph plus the request queue multiplexing onto it.

    The service is single-threaded and clocked by the *simulated*
    device time (``engine.elapsed_seconds``): deadlines and throughput
    are properties of the modelled GPU, not of the host Python process,
    which keeps every serve run byte-deterministic.
    """

    backend: GraphBackend
    #: Content identity of the resident graph (see container epochs).
    epoch: str
    max_pending: int = DEFAULT_MAX_PENDING
    result_cache_entries: int = DEFAULT_RESULT_CACHE
    max_wave: int = MAX_SOURCES
    #: Instrument cluster: sketches, time-series, SLOs, event log.
    #: Separate from ``engine.metrics`` so attaching SLOs or an event
    #: log never perturbs the byte-stable bench counters.
    telemetry: ServiceTelemetry = field(default_factory=ServiceTelemetry)

    _pending: deque = field(default_factory=deque, repr=False)
    _results: list = field(default_factory=list, repr=False)
    _cache: OrderedDict = field(default_factory=OrderedDict, repr=False)
    _next_qid: int = 0
    _num_waves: int = 0

    def __post_init__(self) -> None:
        if not (1 <= self.max_wave <= MAX_SOURCES):
            raise ValueError(
                f"max_wave must be in [1, {MAX_SOURCES}], got {self.max_wave}"
            )
        # One service lifetime = one timeline: waves stack onto a single
        # cumulative trace so queries/sec is elapsed-clock meaningful.
        self.backend.engine.reset_timeline()
        if self.backend.cache is not None:
            self.backend.cache.reset_stats()
        self.telemetry.on_epoch(self.clock, self.epoch)

    # -- construction -------------------------------------------------

    @classmethod
    def from_container(
        cls, container: GraphContainer, *, fmt: str = "efg",
        device=None, cache_kb: int = 256, **kwargs
    ) -> "GraphService":
        """Stand a service up on a saved container image."""
        return cls._build(
            container.to_graph(), container.epoch,
            fmt=fmt, device=device, cache_kb=cache_kb, **kwargs,
        )

    @classmethod
    def from_graph(
        cls, graph: Graph, *, fmt: str = "efg",
        device=None, cache_kb: int = 256, **kwargs
    ) -> "GraphService":
        """Stand a service up on an in-memory graph (epoch computed)."""
        return cls._build(
            graph, GraphContainer.from_graph(graph).epoch,
            fmt=fmt, device=device, cache_kb=cache_kb, **kwargs,
        )

    @classmethod
    def _build(cls, graph, epoch, *, fmt, device, cache_kb, **kwargs):
        from repro.core.efg import efg_encode
        from repro.core.listcache import DecodedListCache
        from repro.formats.cgr import cgr_encode
        from repro.formats.csr import CSRGraph
        from repro.gpusim.device import TITAN_XP
        from repro.traversal.backends import (
            CGRBackend,
            CSRBackend,
            EFGBackend,
        )

        if device is None:
            device = TITAN_XP.scaled(2048)
        if fmt == "efg":
            backend = EFGBackend(efg_encode(graph), device)
        elif fmt == "csr":
            backend = CSRBackend(CSRGraph.from_graph(graph), device)
        elif fmt == "cgr":
            backend = CGRBackend(cgr_encode(graph), device)
        else:
            raise ValueError(f"unknown serving format {fmt!r}")
        if cache_kb:
            backend.attach_cache(DecodedListCache(budget_bytes=cache_kb * 1024))
        return cls(backend=backend, epoch=epoch, **kwargs)

    # -- clock & introspection ----------------------------------------

    @property
    def clock(self) -> float:
        """Current simulated time (seconds since service start)."""
        return self.backend.engine.elapsed_seconds

    @property
    def num_pending(self) -> int:
        return len(self._pending)

    @property
    def num_waves(self) -> int:
        return self._num_waves

    @property
    def results(self) -> list:
        """All results recorded so far, in completion order."""
        return list(self._results)

    # -- request path -------------------------------------------------

    def submit(
        self, source: int, deadline_s: float | None = None,
        source_class: str = "any",
    ) -> int:
        """Admit one query; returns its qid.

        ``deadline_s`` is a *relative* budget on the simulated clock; a
        query whose deadline passes before a wave picks it up is
        answered ``expired`` without occupying a lane.  Cache hits and
        admission rejections resolve immediately (their
        :class:`QueryResult` is recorded at submit time).
        ``source_class`` is a free-form workload label ("hot", "batch",
        …) threaded through telemetry and the event log.
        """
        metrics = self.backend.engine.metrics
        metrics.inc("serve.queries.submitted")
        source = int(source)
        if not (0 <= source < self.backend.num_nodes):
            raise ValueError(
                f"source {source} out of range "
                f"[0, {self.backend.num_nodes})"
            )
        qid = self._next_qid
        self._next_qid += 1
        now = self.clock

        key = (source, self.epoch)
        if key in self._cache:
            self._cache.move_to_end(key)
            metrics.inc("serve.cache.hits")
            metrics.inc("serve.queries.served")
            self.telemetry.on_cache_hit(now, qid, source, source_class)
            self._results.append(QueryResult(
                qid=qid, source=source, status="cached",
                levels=self._cache[key],
                submitted_s=now, completed_s=now,
                source_class=source_class,
            ))
            return qid

        if len(self._pending) >= self.max_pending:
            metrics.inc("serve.queries.rejected")
            self.telemetry.on_reject(now, qid, source, source_class)
            self._results.append(QueryResult(
                qid=qid, source=source, status="rejected",
                submitted_s=now, completed_s=now,
                source_class=source_class,
            ))
            return qid

        metrics.inc("serve.queries.admitted")
        self._pending.append(_Pending(
            qid=qid, source=source,
            deadline_s=None if deadline_s is None else now + deadline_s,
            submitted_s=now, source_class=source_class,
        ))
        self.telemetry.on_submit(
            now, qid, source, source_class, deadline_s,
            depth=len(self._pending),
        )
        return qid

    def _cache_put(self, source: int, levels: np.ndarray) -> None:
        if self.result_cache_entries <= 0:
            return
        key = (source, self.epoch)
        self._cache[key] = levels
        self._cache.move_to_end(key)
        while len(self._cache) > self.result_cache_entries:
            evicted_key, _ = self._cache.popitem(last=False)
            self.backend.engine.metrics.inc("serve.cache.evictions")
            self.telemetry.on_cache_evict(self.clock, evicted_key[0])

    def step_wave(self) -> list:
        """Form and run one msbfs wave; returns its results.

        Scans the pending queue in FIFO order: expired queries are
        answered ``expired`` on the spot (no lane), fresh queries join
        the wave until it holds :attr:`max_wave` *distinct* sources —
        a query duplicating an in-wave source always coalesces in, even
        when the lane budget is exhausted.  Queries left over stay
        pending, in order, for the next wave.
        """
        metrics = self.backend.engine.metrics
        now = self.clock
        taken: list[_Pending] = []
        lanes: set[int] = set()
        leftover: deque = deque()
        batch_results: list[QueryResult] = []

        while self._pending:
            q = self._pending.popleft()
            if q.deadline_s is not None and now > q.deadline_s:
                metrics.inc("serve.queries.expired")
                self.telemetry.on_expire(
                    now, q.qid, q.source, q.source_class,
                    waited_s=now - q.submitted_s,
                )
                batch_results.append(QueryResult(
                    qid=q.qid, source=q.source, status="expired",
                    submitted_s=q.submitted_s, completed_s=now,
                    source_class=q.source_class,
                ))
                continue
            if q.source in lanes or len(lanes) < self.max_wave:
                lanes.add(q.source)
                taken.append(q)
            else:
                leftover.append(q)
        self._pending = leftover

        if not taken:
            self._results.extend(batch_results)
            return batch_results

        wave_idx = self._num_waves
        self._num_waves += 1
        metrics.inc("serve.waves")
        metrics.observe("serve.wave_queries", len(taken))
        metrics.observe("serve.wave_lanes", len(lanes))

        sources = np.array([q.source for q in taken], dtype=np.int64)
        engine = self.backend.engine
        with engine.span(
            f"serve:wave:{wave_idx}", "wave",
            queries=len(taken), lanes=len(lanes),
        ):
            result = msbfs(self.backend, sources, reset_timeline=False)
        done = self.clock
        self.telemetry.on_wave(
            done, wave_idx, queries=len(taken), lanes=len(lanes),
            seconds=done - now, depth=len(self._pending),
        )

        for i, q in enumerate(taken):
            levels = result.levels[i]
            self._cache_put(q.source, levels)
            metrics.inc("serve.queries.served")
            self.telemetry.on_done(
                done, q.qid, q.source, q.source_class, wave_idx,
                latency_s=done - q.submitted_s,
                queue_wait_s=now - q.submitted_s,
            )
            batch_results.append(QueryResult(
                qid=q.qid, source=q.source, status="done",
                levels=levels, wave=wave_idx,
                submitted_s=q.submitted_s, completed_s=done,
                source_class=q.source_class,
            ))
        self._results.extend(batch_results)
        return batch_results

    def run(self, max_waves: int | None = None) -> list:
        """Drain the pending queue (optionally capping the wave count)."""
        out: list[QueryResult] = []
        while self._pending:
            if max_waves is not None and self._num_waves >= max_waves:
                break
            out.extend(self.step_wave())
        return out

    # -- reporting ----------------------------------------------------

    def counts(self) -> dict:
        """Per-status result counts (alphabetical keys)."""
        counts: dict[str, int] = {}
        for r in self._results:
            counts[r.status] = counts.get(r.status, 0) + 1
        return dict(sorted(counts.items()))

    def metrics_section(self) -> dict:
        """The ``serve`` section for :func:`repro.obs.metrics.run_metrics`.

        Numeric-only summary of the service lifetime: query dispositions,
        wave count, queue depth, and queries/sec on the simulated clock.
        """
        counts = self.counts()
        served = counts.get("done", 0) + counts.get("cached", 0)
        elapsed = self.clock
        return {
            "queries": {status: float(n) for status, n in counts.items()},
            "served": float(served),
            "waves": float(self._num_waves),
            "pending": float(len(self._pending)),
            "cache_entries": float(len(self._cache)),
            "elapsed_seconds": elapsed,
            "qps": served / elapsed if elapsed > 0 else 0.0,
        }

    def service_section(self) -> dict:
        """The ``service`` section: sketches, rates, SLOs (telemetry).

        Distinct from :meth:`metrics_section` (the PR 9 ``serve``
        totals, which the bench trajectory depends on byte-for-byte):
        this one carries the distribution and SLO state and is free to
        grow.
        """
        return self.telemetry.section(self.clock)
