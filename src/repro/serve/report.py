"""Human-readable serving report (``repro serve`` output lines).

The :mod:`repro.dist` layer prints a per-level table plus total/tier
summary lines; :func:`serve_report` is the serving-side equivalent —
one block that finally surfaces the admission and result-LRU counters
(hits, evictions, rejects) that previously lived only on the service
object, together with the latency percentiles and SLO state from the
telemetry cluster.
"""

from __future__ import annotations

from repro.serve.service import GraphService

__all__ = ["serve_report"]


def serve_report(service: GraphService) -> str:
    """dist-style text block for one finished serve run."""
    counters = service.backend.engine.metrics.counters
    tel = service.telemetry
    counts = service.counts()
    elapsed = service.clock
    served = counts.get("done", 0) + counts.get("cached", 0)

    submitted = int(counters.get("serve.queries.submitted", 0.0))
    admitted = int(counters.get("serve.queries.admitted", 0.0))
    rejected = int(counters.get("serve.queries.rejected", 0.0))
    expired = int(counters.get("serve.queries.expired", 0.0))
    hits = int(counters.get("serve.cache.hits", 0.0))
    evictions = int(counters.get("serve.cache.evictions", 0.0))

    lines = [
        f"serve run: epoch {service.epoch[:12]}, "
        f"{submitted} submitted, {service.num_waves} waves, "
        f"{elapsed * 1e3:.4f} ms simulated",
        f"admission: {admitted} admitted, {rejected} rejected "
        f"(queue bound {service.max_pending}), {expired} expired "
        f"({100 * tel.miss_rate:.2f}% miss rate)",
        f"result lru: {hits} hits, {evictions} evictions, "
        f"{len(service._cache)} resident "
        f"(bound {service.result_cache_entries}), "
        f"{100 * tel.hit_rate:.2f}% of served answered from cache",
    ]
    if tel.latency.count:
        lines.append(
            f"latency: p50 {tel.latency.quantile(0.5) * 1e6:.4f} us, "
            f"p95 {tel.latency.quantile(0.95) * 1e6:.4f} us, "
            f"p99 {tel.latency.quantile(0.99) * 1e6:.4f} us, "
            f"max {tel.latency.max * 1e6:.4f} us "
            f"(queue wait p99 {tel.queue_wait.quantile(0.99) * 1e6:.4f} us)"
        )
    if tel.wave_lanes.count:
        lines.append(
            f"waves: {service.num_waves} run, mean {tel.wave_lanes.mean:.1f} "
            f"lanes ({100 * tel.lane_occupancy():.1f}% occupancy), "
            f"widest {int(tel.wave_lanes.max)}"
        )
    lines.append(
        f"throughput: {served / elapsed if elapsed > 0 else 0.0:,.0f} "
        f"queries/sec over the run"
    )
    for name, state in sorted(tel.slo.states.items()):
        burn_long = state.burn(state.spec.long_window_s, elapsed)
        burn_short = state.burn(state.spec.short_window_s, elapsed)
        status = "ALERTING" if state.alerting else "ok"
        lines.append(
            f"slo {name}: {status}, burn {burn_long:.2f} long / "
            f"{burn_short:.2f} short (threshold "
            f"{state.spec.burn_threshold:g}), {state.alerts} alerts"
        )
    return "\n".join(lines)
