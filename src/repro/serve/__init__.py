"""Resident graph-as-a-service: containers, batched query serving.

``repro.serve`` is the layer between the offline encoders and online
query traffic: :mod:`~repro.serve.container` persists a graph in an
O(1)-openable, CRC-stamped, mmap-friendly layout;
:mod:`~repro.serve.service` holds one immutable resident graph (keyed
by its content-hash *epoch*) and multiplexes point BFS/reachability
queries into batched :func:`~repro.traversal.msbfs.msbfs` waves; and
:mod:`~repro.serve.driver` is the deterministic closed-loop client
that turns queries/sec into a bench column.
"""

from repro.serve.container import (
    CONTAINER_MAGIC,
    CONTAINER_VERSION,
    GraphContainer,
    container_paths,
    is_container,
    open_container,
    save_container,
)
from repro.serve.driver import (
    DriveReport,
    drive,
    make_query_stream,
    sequential_seconds,
    with_sequential_baseline,
)
from repro.serve.service import GraphService, QueryResult

__all__ = [
    "CONTAINER_MAGIC",
    "CONTAINER_VERSION",
    "GraphContainer",
    "container_paths",
    "is_container",
    "open_container",
    "save_container",
    "GraphService",
    "QueryResult",
    "DriveReport",
    "drive",
    "make_query_stream",
    "sequential_seconds",
    "with_sequential_baseline",
]
