"""Resident graph-as-a-service: containers, batched query serving.

``repro.serve`` is the layer between the offline encoders and online
query traffic: :mod:`~repro.serve.container` persists a graph in an
O(1)-openable, CRC-stamped, mmap-friendly layout;
:mod:`~repro.serve.service` holds one immutable resident graph (keyed
by its content-hash *epoch*) and multiplexes point BFS/reachability
queries into batched :func:`~repro.traversal.msbfs.msbfs` waves; and
:mod:`~repro.serve.driver` is the deterministic closed-loop client
that turns queries/sec into a bench column.

The service-side observability stack rides on top:
:mod:`~repro.serve.telemetry` fans every lifecycle hook into quantile
sketches, windowed time-series, SLO burn-rate evaluation, and a
canonical JSONL event log; :mod:`~repro.serve.monitor` renders the
deterministic ``repro serve --monitor`` / ``repro top`` dashboard;
:mod:`~repro.serve.report` prints the dist-style text block.
"""

from repro.serve.container import (
    CONTAINER_MAGIC,
    CONTAINER_VERSION,
    GraphContainer,
    container_paths,
    is_container,
    open_container,
    save_container,
)
from repro.serve.driver import (
    DriveReport,
    drive,
    make_labeled_stream,
    make_query_stream,
    parse_deadline_mix,
    sequential_seconds,
    with_sequential_baseline,
)
from repro.serve.monitor import (
    PanelData,
    load_panel,
    panel_from_events,
    panel_from_metrics,
    panel_from_service,
    render_panel,
)
from repro.serve.report import serve_report
from repro.serve.service import GraphService, QueryResult
from repro.serve.telemetry import ServiceTelemetry

__all__ = [
    "CONTAINER_MAGIC",
    "CONTAINER_VERSION",
    "GraphContainer",
    "container_paths",
    "is_container",
    "open_container",
    "save_container",
    "GraphService",
    "QueryResult",
    "ServiceTelemetry",
    "DriveReport",
    "drive",
    "make_labeled_stream",
    "make_query_stream",
    "parse_deadline_mix",
    "sequential_seconds",
    "with_sequential_baseline",
    "PanelData",
    "render_panel",
    "panel_from_service",
    "panel_from_metrics",
    "panel_from_events",
    "load_panel",
    "serve_report",
]
