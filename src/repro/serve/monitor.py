"""The live serving dashboard: ``repro serve --monitor`` / ``repro top``.

One panel, three sources:

* **live** — :func:`panel_from_service` snapshots a running
  :class:`~repro.serve.GraphService` after every wave (the
  ``frame_cb`` hook in :func:`~repro.serve.driver.drive`);
* **metrics** — :func:`panel_from_metrics` rebuilds the panel from a
  recorded ``repro.metrics/2`` dump carrying the ``service`` section;
* **events** — :func:`panel_from_events` *replays* a JSONL event log
  (:class:`~repro.obs.slo.EventLog`) through fresh sketches and
  counters, proving the log carries enough to reconstruct the
  operational view.

Frames are plain fixed-width text — no ANSI, no wall-clock — so two
identical drives render byte-identical frame sequences (``cmp``-ed in
the ``monitor-smoke`` CI job), and a frame diff is a meaningful diff.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.sketch import QuantileSketch
from repro.obs.slo import EventLog
from repro.obs.timeseries import TimeSeries
from repro.serve.telemetry import DEFAULT_WINDOW_S, SKETCH_ACCURACY

__all__ = [
    "PanelData",
    "render_panel",
    "panel_from_service",
    "panel_from_metrics",
    "panel_from_events",
    "load_panel",
]

#: Query outcomes shown on the panel's first line, fixed order.
_OUTCOMES = ("done", "cached", "rejected", "expired")


@dataclass
class PanelData:
    """Everything one dashboard frame shows, numeric and source-agnostic."""

    origin: str  # "live" | "metrics" | "events"
    epoch: str = ""
    elapsed_s: float = 0.0
    #: Wave index of this frame (-1 for end-of-run panels).
    frame: int = -1
    total: int = 0
    served: int = 0
    outcomes: dict = field(default_factory=dict)
    pending: int = 0
    waves: int = 0
    qps: float = 0.0
    windowed_qps: float = 0.0
    #: Latency percentiles in simulated seconds (p50/p95/p99/max).
    latency: dict = field(default_factory=dict)
    queue_wait_p99: float = 0.0
    mean_lanes: float = 0.0
    lane_occupancy: float = 0.0
    miss_rate: float = 0.0
    hit_rate: float = 0.0
    #: Rows of {name, burn_long, burn_short, alerting, alerts}.
    slo: list = field(default_factory=list)
    events: int = 0
    rotations: int = 0


def _us(seconds: float) -> str:
    """Simulated seconds as fixed-width microseconds."""
    return f"{seconds * 1e6:.4f}us"


def render_panel(panel: PanelData) -> str:
    """One deterministic plain-text frame (no ANSI, no wall clock)."""
    head = f"repro top [{panel.origin}]"
    if panel.epoch:
        head += f"  epoch {panel.epoch[:12]}"
    head += f"  t={_us(panel.elapsed_s)}"
    if panel.frame >= 0:
        head += f"  wave {panel.frame}"
    by_status = "  ".join(
        f"{status} {panel.outcomes.get(status, 0)}" for status in _OUTCOMES
    )
    lat = panel.latency
    lines = [
        head,
        f"queries  total {panel.total}  served {panel.served}  "
        f"{by_status}  pending {panel.pending}",
        f"rate     qps {panel.qps:,.0f}  windowed {panel.windowed_qps:,.0f}"
        f"  waves {panel.waves}  lanes {panel.mean_lanes:.1f}"
        f" ({100 * panel.lane_occupancy:.1f}%)",
        f"latency  p50 {_us(lat.get('p50', 0.0))}  "
        f"p95 {_us(lat.get('p95', 0.0))}  "
        f"p99 {_us(lat.get('p99', 0.0))}  "
        f"max {_us(lat.get('max', 0.0))}  "
        f"wait-p99 {_us(panel.queue_wait_p99)}",
        f"health   miss {100 * panel.miss_rate:.2f}%  "
        f"lru-hit {100 * panel.hit_rate:.2f}%",
    ]
    if panel.slo:
        for row in panel.slo:
            state = "ALERTING" if row["alerting"] else "ok"
            lines.append(
                f"slo      {row['name']:<16s} "
                f"burn {row['burn_long']:.2f}/{row['burn_short']:.2f} "
                f"(long/short)  {state:<8s} alerts {row['alerts']}"
            )
    else:
        lines.append("slo      (none configured)")
    lines.append(
        f"events   {panel.events} logged, {panel.rotations} rotations"
    )
    return "\n".join(lines)


def _sketch_row(sketch: QuantileSketch) -> dict:
    if not sketch.count:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}
    return {
        "p50": sketch.quantile(0.5),
        "p95": sketch.quantile(0.95),
        "p99": sketch.quantile(0.99),
        "max": sketch.max,
    }


def panel_from_service(service, frame: int = -1) -> PanelData:
    """Snapshot a live service (the ``--monitor`` per-wave frame)."""
    tel = service.telemetry
    now = service.clock
    elapsed = now
    served = tel.served
    slo_rows = [
        {
            "name": name,
            "burn_long": state.burn(state.spec.long_window_s, now),
            "burn_short": state.burn(state.spec.short_window_s, now),
            "alerting": state.alerting,
            "alerts": state.alerts,
        }
        for name, state in sorted(tel.slo.states.items())
    ]
    return PanelData(
        origin="live",
        epoch=service.epoch,
        elapsed_s=elapsed,
        frame=frame,
        total=tel.total,
        served=served,
        outcomes=dict(tel.outcomes),
        pending=service.num_pending,
        waves=service.num_waves,
        qps=served / elapsed if elapsed > 0 else 0.0,
        windowed_qps=tel.windowed_qps(now),
        latency=_sketch_row(tel.latency),
        queue_wait_p99=(
            tel.queue_wait.quantile(0.99) if tel.queue_wait.count else 0.0
        ),
        mean_lanes=tel.wave_lanes.mean,
        lane_occupancy=tel.lane_occupancy(),
        miss_rate=tel.miss_rate,
        hit_rate=tel.hit_rate,
        slo=slo_rows,
        events=len(tel.events),
        rotations=tel.events.rotations,
    )


def panel_from_metrics(payload: dict) -> PanelData:
    """Rebuild the panel from a metrics dump with a ``service`` section."""
    if "service" not in payload:
        raise ValueError(
            "metrics dump has no 'service' section (pre-observability "
            "run?) — re-run `repro serve --metrics` to record one"
        )
    service = payload["service"]
    serve = payload.get("serve", {})
    meta = payload.get("meta", {})
    latency = service.get("latency", {})
    rates = service.get("rates", {})
    outcomes = {k: int(v) for k, v in service.get("outcomes", {}).items()}
    served = outcomes.get("done", 0) + outcomes.get("cached", 0)
    slo_rows = [
        {
            "name": name,
            "burn_long": row.get("burn_long", 0.0),
            "burn_short": row.get("burn_short", 0.0),
            "alerting": bool(row.get("alerting", 0.0)),
            "alerts": int(row.get("alerts", 0)),
        }
        for name, row in sorted(service.get("slo", {}).items())
    ]
    wave_lanes = service.get("wave_lanes", {})
    return PanelData(
        origin="metrics",
        epoch=str(meta.get("epoch", "")),
        elapsed_s=serve.get("elapsed_seconds", 0.0),
        total=sum(outcomes.values()),
        served=served,
        outcomes=outcomes,
        pending=int(serve.get("pending", 0)),
        waves=int(serve.get("waves", 0)),
        qps=serve.get("qps", 0.0),
        windowed_qps=rates.get("windowed_qps", 0.0),
        latency={
            "p50": latency.get("p50", 0.0),
            "p95": latency.get("p95", 0.0),
            "p99": latency.get("p99", 0.0),
            "max": latency.get("max", 0.0),
        },
        queue_wait_p99=service.get("queue_wait", {}).get("p99", 0.0),
        mean_lanes=wave_lanes.get("mean", 0.0),
        lane_occupancy=rates.get("lane_occupancy", 0.0),
        miss_rate=rates.get("miss_rate", 0.0),
        hit_rate=rates.get("hit_rate", 0.0),
        slo=slo_rows,
        events=int(service.get("events", {}).get("count", 0)),
        rotations=int(service.get("events", {}).get("rotations", 0)),
    )


def panel_from_events(events: list[dict]) -> PanelData:
    """Replay a JSONL event log into a panel.

    The log alone reconstructs the full operational view: sketches are
    re-fed from the per-query ``done``/``cache_hit`` events, SLO state
    from the ``slo`` transition events, queue depth from admission
    arithmetic.  (This is the ``repro top events.jsonl`` path.)
    """
    from repro.traversal.msbfs import MAX_SOURCES

    if not events:
        raise ValueError("event log is empty")
    latency = QuantileSketch(SKETCH_ACCURACY)
    queue_wait = QuantileSketch(SKETCH_ACCURACY)
    completions = TimeSeries(capacity=8192)
    outcomes: dict[str, int] = {}
    slo_last: dict[str, dict] = {}
    slo_alerts: dict[str, int] = {}
    epoch = ""
    waves = 0
    lanes_sum = 0.0
    admitted = 0
    finished = 0  # admitted queries that reached done/expired
    elapsed = 0.0
    for event in events:
        kind = event.get("kind", "")
        t = float(event.get("t", 0.0))
        if t > elapsed:
            elapsed = t
        if kind == "epoch":
            epoch = event.get("epoch", "")
        elif kind == "admit":
            admitted += 1
        elif kind == "done":
            outcomes["done"] = outcomes.get("done", 0) + 1
            latency.add(float(event.get("latency_s", 0.0)))
            queue_wait.add(float(event.get("wait_s", 0.0)))
            completions.record(t, 1.0)
            finished += 1
        elif kind == "cache_hit":
            outcomes["cached"] = outcomes.get("cached", 0) + 1
            latency.add(0.0)
            queue_wait.add(0.0)
            completions.record(t, 1.0)
        elif kind == "reject":
            outcomes["rejected"] = outcomes.get("rejected", 0) + 1
        elif kind == "expire":
            outcomes["expired"] = outcomes.get("expired", 0) + 1
            finished += 1
        elif kind == "wave":
            waves += 1
            lanes_sum += float(event.get("lanes", 0))
        elif kind == "slo":
            name = event.get("slo", "")
            slo_last[name] = event
            if event.get("state") == "alerting":
                slo_alerts[name] = slo_alerts.get(name, 0) + 1
    total = sum(outcomes.values())
    served = outcomes.get("done", 0) + outcomes.get("cached", 0)
    missed = outcomes.get("rejected", 0) + outcomes.get("expired", 0)
    slo_rows = [
        {
            "name": name,
            "burn_long": float(event.get("burn_long", 0.0)),
            "burn_short": float(event.get("burn_short", 0.0)),
            "alerting": event.get("state") == "alerting",
            "alerts": slo_alerts.get(name, 0),
        }
        for name, event in sorted(slo_last.items())
    ]
    return PanelData(
        origin="events",
        epoch=epoch,
        elapsed_s=elapsed,
        total=total,
        served=served,
        outcomes=outcomes,
        pending=admitted - finished,
        waves=waves,
        qps=served / elapsed if elapsed > 0 else 0.0,
        windowed_qps=completions.stats(DEFAULT_WINDOW_S, now=elapsed)["rate"],
        latency=_sketch_row(latency),
        queue_wait_p99=(
            queue_wait.quantile(0.99) if queue_wait.count else 0.0
        ),
        mean_lanes=lanes_sum / waves if waves else 0.0,
        lane_occupancy=(lanes_sum / waves / MAX_SOURCES) if waves else 0.0,
        miss_rate=missed / total if total else 0.0,
        hit_rate=outcomes.get("cached", 0) / served if served else 0.0,
        slo=slo_rows,
        events=len(events),
        rotations=0,
    )


def load_panel(path: str) -> PanelData:
    """Build a panel from a recorded artifact (``repro top <path>``).

    ``.jsonl`` is replayed as an event log; anything else is loaded as
    a metrics dump (schema-checked).  Raises ``ValueError`` on files
    that are neither.
    """
    if path.endswith(".jsonl"):
        with open(path) as fh:
            text = fh.read()
        return panel_from_events(EventLog.parse(text))
    from repro.obs.compare import load_metrics

    return panel_from_metrics(load_metrics(path))
