"""HALO-style locality ordering.

The paper's HALO reference (Gera et al., VLDB'20) reorders for memory
locality rather than minimal gaps.  We reproduce its *effect* with a
hub-anchored clustered BFS order: traverse from the highest-degree
vertex, enqueueing neighbours in degree-descending order, so each
community's vertices receive consecutive ids and hubs sit near the
vertices that reference them — the access pattern a traversal touches
together ends up adjacent in memory.  Unreached components are appended
in degree order.
"""

from __future__ import annotations

import numpy as np

from repro.formats.graph import Graph

__all__ = ["halo_order"]


def halo_order(graph: Graph) -> np.ndarray:
    """Locality permutation: ``perm[v]`` = new id of vertex ``v``."""
    nv = graph.num_nodes
    degrees = graph.degrees
    # Process vertices level-synchronously from the biggest hub; within
    # a level, order candidates by (discoverer position, degree desc) so
    # communities stay contiguous.
    new_id = np.full(nv, -1, dtype=np.int64)
    next_id = 0
    assigned = np.zeros(nv, dtype=bool)
    # Seeds in degree-descending order for component starts.
    seed_order = np.argsort(-degrees, kind="stable")
    seed_ptr = 0
    while next_id < nv:
        while seed_ptr < nv and assigned[seed_order[seed_ptr]]:
            seed_ptr += 1
        if seed_ptr >= nv:
            break
        seed = seed_order[seed_ptr]
        frontier = np.array([seed], dtype=np.int64)
        assigned[seed] = True
        new_id[seed] = next_id
        next_id += 1
        while frontier.size:
            # Expand in current frontier order (already locality-sorted).
            nbrs = graph.elist[_flat_slices(graph, frontier)]
            fresh_mask = ~assigned[nbrs]
            fresh = nbrs[fresh_mask]
            if fresh.size:
                # First occurrence wins; stable unique keeps discovery order.
                _, first = np.unique(fresh, return_index=True)
                fresh = fresh[np.sort(first)]
                assigned[fresh] = True
                new_id[fresh] = next_id + np.arange(fresh.shape[0])
                next_id += int(fresh.shape[0])
            frontier = fresh
    return new_id


def _flat_slices(graph: Graph, frontier: np.ndarray) -> np.ndarray:
    """Flat elist indices of the frontier's adjacency slices."""
    from repro.core.efg import csr_gather_indices

    idx, _ = csr_gather_indices(graph.vlist[frontier], graph.degrees[frontier])
    return idx
