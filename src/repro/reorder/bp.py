"""BP-style recursive graph bisection (gap-minimising reorder).

Simplified reimplementation of *Compressing Graphs and Indexes with
Recursive Graph Bisection* (Dhulipala et al., KDD'16): recursively
split the current vertex range in two and locally improve the split by
swapping the vertices whose neighbourhoods point mostly into the other
half.  Vertices that end up next to their neighbours produce small
neighbour-id gaps, which is exactly what gap-based codes (CGR, Ligra+)
reward — and what Elias-Fano is indifferent to (Fig. 12a).

The move-gain model is the standard degree-balance heuristic: a vertex
wants to sit in the half holding more of its neighbours.  Processing is
level-synchronous — all bisection ranges of one depth are improved in
the same vectorized pass, so the whole algorithm is
O(passes · depth · |E|) with no per-vertex Python loops.
"""

from __future__ import annotations

import numpy as np

from repro.formats.graph import Graph

__all__ = ["bp_order"]


def bp_order(
    graph: Graph,
    min_block: int = 32,
    passes: int = 4,
    max_depth: int | None = None,
) -> np.ndarray:
    """Compute a BP-style gap-minimising permutation.

    Parameters
    ----------
    graph:
        Input graph (its current order seeds the bisection).
    min_block:
        Stop recursing below this range size.
    passes:
        Swap-improvement passes per bisection level.
    max_depth:
        Optional recursion cap (default: until ranges shrink below
        ``min_block``).

    Returns
    -------
    ``perm`` with ``perm[v]`` = new id of vertex ``v``.
    """
    if min_block < 2:
        raise ValueError(f"min_block must be >= 2, got {min_block}")
    nv = graph.num_nodes
    order = np.arange(nv, dtype=np.int64)
    pos = np.arange(nv, dtype=np.int64)
    src = np.repeat(np.arange(nv, dtype=np.int64), graph.degrees)
    dst = graph.elist
    depth_cap = max_depth if max_depth is not None else 64

    for depth in range(depth_cap):
        # Split boundaries for every active range at this depth.
        bounds = np.array([0, nv], dtype=np.int64)
        for _ in range(depth):
            mids = (bounds[:-1] + bounds[1:]) // 2
            bounds = np.unique(np.concatenate([bounds, mids]))
        sizes = np.diff(bounds)
        if (sizes <= min_block).all():
            break
        mids = (bounds[:-1] + bounds[1:]) // 2

        for _ in range(passes):
            pos[order] = np.arange(nv, dtype=np.int64)
            # Which range each vertex sits in, and that range's midpoint.
            rng_of_pos = np.searchsorted(bounds, pos, side="right") - 1
            my_mid = mids[rng_of_pos]
            # Neighbour placement relative to *the source's* range.
            nbr_pos = pos[dst]
            same_range = rng_of_pos[src] == rng_of_pos[dst]
            in_right = same_range & (nbr_pos >= my_mid[src])
            in_left = same_range & (nbr_pos < my_mid[src])
            right_cnt = np.bincount(src, weights=in_right, minlength=nv)
            left_cnt = np.bincount(src, weights=in_left, minlength=nv)
            gain = right_cnt - left_cnt  # positive: wants the right half

            swapped_any = False
            for r in range(bounds.shape[0] - 1):
                lo, mid, hi = int(bounds[r]), int(mids[r]), int(bounds[r + 1])
                if hi - lo <= min_block:
                    continue
                left_v = order[lo:mid]
                right_v = order[mid:hi]
                lg = gain[left_v]
                rg = gain[right_v]
                lrank = np.argsort(-lg, kind="stable")
                rrank = np.argsort(rg, kind="stable")
                k = min(left_v.shape[0], right_v.shape[0])
                useful = (lg[lrank[:k]] - rg[rrank[:k]]) > 0
                n = int(useful.sum())
                if n == 0:
                    continue
                li = lo + lrank[:k][useful]
                ri = mid + rrank[:k][useful]
                tmp = order[li].copy()
                order[li] = order[ri]
                order[ri] = tmp
                swapped_any = True
            if not swapped_any:
                break

    perm = np.empty(nv, dtype=np.int64)
    perm[order] = np.arange(nv, dtype=np.int64)
    return perm
