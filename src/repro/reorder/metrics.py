"""Ordering quality metrics: gap structure and locality.

Used by the reordering study (Fig. 12) to explain *why* an ordering
helps which format: gap codes react to ``mean_log2_gap`` (smaller gaps
→ fewer code bits), traversals react to ``mean_edge_span`` (closer
neighbour ids → better coalescing), and EF reacts to neither.
"""

from __future__ import annotations

import numpy as np

from repro.formats.graph import Graph

__all__ = ["gap_statistics", "locality_statistics"]


def gap_statistics(graph: Graph) -> dict[str, float]:
    """Per-list neighbour-gap statistics.

    Returns the mean/median of ``log2(gap)`` over all within-list
    neighbour gaps (first gap measured from 0) and the fraction of
    unit gaps (consecutive ids — what interval codes turn into runs).
    """
    if graph.num_edges == 0:
        return {"mean_log2_gap": 0.0, "median_log2_gap": 0.0, "unit_gap_fraction": 0.0}
    diffs = np.diff(graph.elist)
    starts = graph.vlist[1:-1]
    starts = starts[(starts > 0) & (starts < graph.num_edges)]
    within = np.ones(graph.num_edges - 1, dtype=bool) if graph.num_edges > 1 else np.zeros(0, dtype=bool)
    if within.size:
        within[starts - 1] = False
    gaps = diffs[within].astype(np.float64)
    firsts = graph.elist[graph.vlist[:-1][graph.degrees > 0]].astype(np.float64) + 1
    all_gaps = np.concatenate([gaps, firsts])
    logs = np.log2(np.maximum(all_gaps, 1.0))
    return {
        "mean_log2_gap": float(logs.mean()),
        "median_log2_gap": float(np.median(logs)),
        "unit_gap_fraction": float((gaps == 1).mean()) if gaps.size else 0.0,
    }


def locality_statistics(graph: Graph) -> dict[str, float]:
    """Edge-span statistics: how far neighbours sit from their source.

    ``mean_edge_span`` is the average ``|dst - src|``; smaller spans
    mean a traversal's scattered reads cluster into fewer memory
    sectors.
    """
    if graph.num_edges == 0:
        return {"mean_edge_span": 0.0, "median_edge_span": 0.0}
    src = np.repeat(np.arange(graph.num_nodes, dtype=np.int64), graph.degrees)
    span = np.abs(graph.elist - src).astype(np.float64)
    return {
        "mean_edge_span": float(span.mean()),
        "median_edge_span": float(np.median(span)),
    }
