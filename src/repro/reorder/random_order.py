"""Random ordering — the pathological control of Sec. VIII-D.

A uniform random relabelling destroys every kind of id structure: gaps
become uniform over the universe (gap codes collapse, 18-32%
compression loss in the paper) and traversal locality evaporates
(0.65-0.8x runtime for every format).  Elias-Fano's storage bound
depends only on list length and largest value, so EFG's compression is
*unchanged* — the paper's order-independence claim.
"""

from __future__ import annotations

import numpy as np

from repro.formats.graph import Graph

__all__ = ["random_order"]


def random_order(graph: Graph, seed: int = 0) -> np.ndarray:
    """Uniform random permutation: ``perm[v]`` = new id of vertex ``v``."""
    rng = np.random.default_rng(seed)
    return rng.permutation(graph.num_nodes).astype(np.int64)
