"""Descending-degree ordering (a common cheap baseline).

Hubs get the smallest ids.  Power-law graphs reference hubs from
everywhere, so small hub ids shrink the *first* gap of most lists and
concentrate the hottest vertex metadata in a few cache lines.
"""

from __future__ import annotations

import numpy as np

from repro.formats.graph import Graph

__all__ = ["degree_order"]


def degree_order(graph: Graph) -> np.ndarray:
    """Permutation assigning ids by descending degree (stable)."""
    order = np.argsort(-graph.degrees, kind="stable")
    perm = np.empty(graph.num_nodes, dtype=np.int64)
    perm[order] = np.arange(graph.num_nodes, dtype=np.int64)
    return perm
