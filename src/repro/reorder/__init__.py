"""Graph reordering methods for the Sec. VIII-D study.

* :func:`bp_order` — gap-minimising recursive graph bisection in the
  spirit of BP (Dhulipala et al., KDD'16).
* :func:`halo_order` — locality-optimising ordering in the spirit of
  HALO (Gera et al., VLDB'20).
* :func:`random_order` — the pathological control (destroys all
  locality; CGR/Ligra+ compression collapses, EFG is unaffected).
* :func:`degree_order` — descending-degree baseline.

All functions return a permutation ``perm`` with ``perm[v]`` = new id
of old vertex ``v``, applied via
:meth:`repro.formats.graph.Graph.relabelled`.
"""

from repro.reorder.bp import bp_order
from repro.reorder.degree import degree_order
from repro.reorder.halo import halo_order
from repro.reorder.metrics import gap_statistics, locality_statistics
from repro.reorder.random_order import random_order

__all__ = [
    "bp_order",
    "halo_order",
    "random_order",
    "degree_order",
    "gap_statistics",
    "locality_statistics",
]
