"""Sec. VI-E ablation — partial frontier radix sort (65% of the bits).

Paper: average ~9% runtime improvement (max 33%) on EFG BFS, from
improved coalescing of the per-vertex gathers and candidate probes.

In our simulator the coalescing improvement is *measured* (the sorted
frontier's access streams merge into fewer memory transactions — the
``traffic_saving`` column), but the runtime delta is muted whenever the
decode-instruction term of the ``max`` overlap model is the binding
bound rather than memory.  We therefore assert hard on the traffic
mechanism and keep a neutrality band on runtime.
"""

import numpy as np
from conftest import run_once, save_records

from repro.bench.experiments import exp_frontier_sort
from repro.bench.report import format_table

GRAPHS = (
    "scc-lj", "orkut", "urnd_26", "twitter", "sk-05",
    "gsh-15-h_sym", "sk-05_sym", "moliere-16",
)


def test_frontier_sort_ablation(benchmark, results_dir):
    records = run_once(benchmark, exp_frontier_sort, GRAPHS, 2)
    print()
    print(
        format_table(
            ["graph", "sorted ms", "unsorted ms", "speedup", "traffic x"],
            [
                [r["name"], r["sorted_ms"], r["unsorted_ms"], r["speedup"],
                 r["traffic_saving"]]
                for r in records
            ],
            title="Sec. VI-E: partial frontier sort ablation (EFG BFS)",
        )
    )
    save_records(results_dir, "frontier_sort", records)

    speedups = np.array([r["speedup"] for r in records])
    savings = np.array([r["traffic_saving"] for r in records])
    print(
        f"\nmean speedup {speedups.mean():.3f} "
        f"(paper avg 1.09, max 1.33); mean traffic saving {savings.mean():.3f}x"
    )
    # The mechanism: sorting reduces measured expand/filter traffic.
    assert savings.mean() > 1.0
    assert savings.max() > 1.02
    # Runtime: never a significant regression, non-negative on average
    # within noise.
    assert speedups.min() > 0.9
    assert speedups.mean() > 0.97
