"""Multi-GPU extension — compression vs buying more GPUs (Intro).

The paper's introduction positions graph compression as complementary
to distributing the graph over multiple GPUs.  This bench quantifies
the trade on an out-of-core graph:

* 1x Titan Xp, CSR — spills, PCIe-bound (the problem);
* 2x/4x Titan Xp, CSR partitioned — in-memory again, plus an
  all-to-all frontier exchange per level (the hardware answer);
* 1x Titan Xp, EFG — in-memory after compression (the paper's answer).

Expected shape: EFG on one GPU recovers the bulk of the multi-GPU
speedup with zero extra hardware; adding GPUs still wins at the cost
of 2-4x the silicon plus exchange traffic.
"""

import numpy as np
from conftest import run_once, save_records

from repro.bench.harness import SCALED_TITAN_XP, encoded_suite_graph, make_backend
from repro.bench.report import format_table
from repro.traversal.bfs import bfs
from repro.traversal.distributed import multi_gpu_bfs

GRAPHS = ("gsh-15-h_sym", "sk-05_sym", "com-frndster")


def _run():
    records = []
    for name in GRAPHS:
        enc = encoded_suite_graph(name)
        src = int(np.argmax(enc.graph.degrees))
        one_csr = bfs(make_backend("csr", enc), src)
        one_efg = bfs(make_backend("efg", enc), src)
        two = multi_gpu_bfs(enc.graph, src, 2, SCALED_TITAN_XP, fmt="csr")
        four = multi_gpu_bfs(enc.graph, src, 4, SCALED_TITAN_XP, fmt="csr")
        assert np.array_equal(two.levels, one_csr.levels)
        records.append(
            {
                "name": name,
                "csr_1gpu_ms": one_csr.runtime_ms,
                "efg_1gpu_ms": one_efg.runtime_ms,
                "csr_2gpu_ms": two.runtime_ms,
                "csr_4gpu_ms": four.runtime_ms,
                "exchanged_mb_2gpu": two.exchanged_bytes / 1e6,
                "efg_speedup": one_csr.runtime_ms / one_efg.runtime_ms,
                "gpu2_speedup": one_csr.runtime_ms / two.runtime_ms,
            }
        )
    return records


def test_multigpu_vs_compression(benchmark, results_dir):
    records = run_once(benchmark, _run)
    print()
    print(
        format_table(
            ["graph", "1xCSR ms", "1xEFG ms", "2xCSR ms", "4xCSR ms",
             "2x exch MB"],
            [
                [r["name"], r["csr_1gpu_ms"], r["efg_1gpu_ms"],
                 r["csr_2gpu_ms"], r["csr_4gpu_ms"],
                 r["exchanged_mb_2gpu"]]
                for r in records
            ],
            title="Out-of-core: compress (EFG) vs partition (multi-GPU)",
        )
    )
    save_records(results_dir, "multigpu", records)

    for r in records:
        # Both answers beat the PCIe-bound single-GPU CSR run...
        assert r["efg_speedup"] > 2.0, r["name"]
        assert r["gpu2_speedup"] > 1.4, r["name"]
        # ...and single-GPU EFG recovers a large share of the 2-GPU win
        # without the second device.
        assert r["efg_1gpu_ms"] < 4.0 * r["csr_2gpu_ms"], r["name"]
    # The social graph's scattered neighbours generate the heaviest
    # all-to-all exchange of the suite (even after the sender dedupes
    # repeat discoveries, which is what keeps 2-GPU competitive with
    # 1-GPU EFG here — compression still needs no interconnect at all).
    frnd = next(r for r in records if r["name"] == "com-frndster")
    assert frnd["exchanged_mb_2gpu"] == max(
        r["exchanged_mb_2gpu"] for r in records
    )
    assert frnd["exchanged_mb_2gpu"] > 0.3
    assert frnd["efg_1gpu_ms"] < 2.0 * frnd["csr_2gpu_ms"]


WIRES = ("raw64", "raw", "bitmap", "varint", "auto")


def _run_codecs():
    records = []
    for name in GRAPHS:
        enc = encoded_suite_graph(name)
        src = int(np.argmax(enc.graph.degrees))
        row = {"name": name}
        baseline = None
        for wire in WIRES:
            r = multi_gpu_bfs(
                enc.graph, src, 4, SCALED_TITAN_XP, fmt="csr",
                wire=wire, contention=0.5,
            )
            if baseline is None:
                baseline = r
            else:
                assert np.array_equal(r.levels, baseline.levels)
            row[f"{wire}_mb"] = r.exchanged_bytes / 1e6
            row[f"{wire}_ms"] = r.runtime_ms
        records.append(row)
    return records


def test_wire_codec_traffic(benchmark, results_dir):
    """Compressing the exchanged frontier, not just the stored graph.

    The same density argument the paper makes for adjacency compression
    applies to the frontier on the wire: dense levels pack into bitmaps,
    sparse ones into delta-varints, and auto picks per message.
    """
    records = run_once(benchmark, _run_codecs)
    print()
    print(
        format_table(
            ["graph"] + [f"{w} MB" for w in WIRES],
            [[r["name"]] + [r[f"{w}_mb"] for w in WIRES] for r in records],
            title="4-GPU BFS exchange traffic by wire codec",
        )
    )
    save_records(results_dir, "multigpu_wire", records)

    for r in records:
        # Narrowing to int32 halves the historical raw64 traffic; the
        # compressed codecs must then beat even that, and auto must be
        # the best of the fixed choices (headers make exact min unequal
        # only when codec picks differ per message).
        assert r["raw_mb"] < r["raw64_mb"], r["name"]
        assert min(r["bitmap_mb"], r["varint_mb"]) < r["raw_mb"], r["name"]
        assert r["auto_mb"] <= min(
            r["raw_mb"], r["bitmap_mb"], r["varint_mb"]
        ), r["name"]
