"""Multi-GPU extension — compression vs buying more GPUs (Intro).

The paper's introduction positions graph compression as complementary
to distributing the graph over multiple GPUs.  This bench quantifies
the trade on an out-of-core graph:

* 1x Titan Xp, CSR — spills, PCIe-bound (the problem);
* 2x/4x Titan Xp, CSR partitioned — in-memory again, plus an
  all-to-all frontier exchange per level (the hardware answer);
* 1x Titan Xp, EFG — in-memory after compression (the paper's answer).

Expected shape: EFG on one GPU recovers the bulk of the multi-GPU
speedup with zero extra hardware; adding GPUs still wins at the cost
of 2-4x the silicon plus exchange traffic.
"""

import numpy as np
from conftest import run_once, save_records

from repro.bench.harness import SCALED_TITAN_XP, encoded_suite_graph, make_backend
from repro.bench.report import format_table
from repro.traversal.bfs import bfs
from repro.traversal.distributed import multi_gpu_bfs

GRAPHS = ("gsh-15-h_sym", "sk-05_sym", "com-frndster")


def _run():
    records = []
    for name in GRAPHS:
        enc = encoded_suite_graph(name)
        src = int(np.argmax(enc.graph.degrees))
        one_csr = bfs(make_backend("csr", enc), src)
        one_efg = bfs(make_backend("efg", enc), src)
        two = multi_gpu_bfs(enc.graph, src, 2, SCALED_TITAN_XP, fmt="csr")
        four = multi_gpu_bfs(enc.graph, src, 4, SCALED_TITAN_XP, fmt="csr")
        assert np.array_equal(two.levels, one_csr.levels)
        records.append(
            {
                "name": name,
                "csr_1gpu_ms": one_csr.runtime_ms,
                "efg_1gpu_ms": one_efg.runtime_ms,
                "csr_2gpu_ms": two.runtime_ms,
                "csr_4gpu_ms": four.runtime_ms,
                "exchanged_mb_2gpu": two.exchanged_bytes / 1e6,
                "efg_speedup": one_csr.runtime_ms / one_efg.runtime_ms,
                "gpu2_speedup": one_csr.runtime_ms / two.runtime_ms,
            }
        )
    return records


def test_multigpu_vs_compression(benchmark, results_dir):
    records = run_once(benchmark, _run)
    print()
    print(
        format_table(
            ["graph", "1xCSR ms", "1xEFG ms", "2xCSR ms", "4xCSR ms",
             "2x exch MB"],
            [
                [r["name"], r["csr_1gpu_ms"], r["efg_1gpu_ms"],
                 r["csr_2gpu_ms"], r["csr_4gpu_ms"],
                 r["exchanged_mb_2gpu"]]
                for r in records
            ],
            title="Out-of-core: compress (EFG) vs partition (multi-GPU)",
        )
    )
    save_records(results_dir, "multigpu", records)

    for r in records:
        # Both answers beat the PCIe-bound single-GPU CSR run...
        assert r["efg_speedup"] > 2.0, r["name"]
        assert r["gpu2_speedup"] > 1.4, r["name"]
        # ...and single-GPU EFG recovers a large share of the 2-GPU win
        # without the second device.
        assert r["efg_1gpu_ms"] < 4.0 * r["csr_2gpu_ms"], r["name"]
    # The social graph's scattered neighbours make the all-to-all
    # exchange the bottleneck — on it, 1-GPU EFG beats 2-GPU CSR
    # outright (compression needs no interconnect).
    frnd = next(r for r in records if r["name"] == "com-frndster")
    assert frnd["efg_1gpu_ms"] < frnd["csr_2gpu_ms"]
    assert frnd["exchanged_mb_2gpu"] > 1.0
