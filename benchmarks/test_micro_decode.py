"""Microbenchmarks — real wall-clock throughput of the hot primitives.

Unlike the table/figure benches (which report *simulated* device time),
these measure our actual Python implementation: EFG whole-frontier
decode, EF range decode, and the encode pipelines.  Useful for tracking
regressions in the vectorized kernels themselves.
"""

import numpy as np
import pytest

from repro.bench.harness import encoded_suite_graph
from repro.core.efg import decode_lists
from repro.ef.encoding import ef_decode_range, ef_encode


@pytest.fixture(scope="module")
def twitter():
    enc = encoded_suite_graph("twitter")
    return enc.graph, enc.efg


def test_decode_whole_graph_throughput(benchmark, twitter):
    graph, efg = twitter
    verts = np.arange(graph.num_nodes, dtype=np.int64)

    def run():
        vals, _ = decode_lists(efg, verts)
        return vals

    vals = benchmark(run)
    assert vals.shape[0] == graph.num_edges
    benchmark.extra_info["edges"] = graph.num_edges
    benchmark.extra_info["edges_per_sec"] = graph.num_edges / benchmark.stats["mean"]


def test_decode_frontier_throughput(benchmark, twitter, rng=np.random.default_rng(3)):
    graph, efg = twitter
    frontier = rng.choice(graph.num_nodes, size=4096, replace=False)

    def run():
        return decode_lists(efg, frontier)[0]

    vals = benchmark(run)
    assert vals.shape[0] == graph.degrees[frontier].sum()


def test_ef_range_decode(benchmark):
    rng = np.random.default_rng(9)
    values = np.sort(rng.integers(0, 10**8, size=100_000))
    seq = ef_encode(values, quantum=512)

    def run():
        return ef_decode_range(seq, 40_000, 60_000)

    out = benchmark(run)
    assert np.array_equal(out, values[40_000:60_000])


def test_efg_encode_throughput(benchmark, twitter):
    graph, _ = twitter
    from repro.core.efg import efg_encode

    efg = benchmark(efg_encode, graph)
    assert efg.num_edges == graph.num_edges
    benchmark.extra_info["edges_per_sec"] = graph.num_edges / benchmark.stats["mean"]


def test_efg_has_edge_throughput(benchmark, twitter):
    """O(log deg) adjacency queries on the compressed graph."""
    graph, efg = twitter
    rng = np.random.default_rng(5)
    us = rng.integers(0, graph.num_nodes, size=512)
    vs = rng.integers(0, graph.num_nodes, size=512)

    def run():
        return sum(efg.has_edge(int(u), int(v)) for u, v in zip(us, vs))

    hits = benchmark(run)
    # Sanity: results agree with the uncompressed adjacency.
    expect = sum(
        int(v) in set(graph.neighbours(int(u)).tolist())
        for u, v in zip(us, vs)
    )
    assert hits == expect


def test_ef_intersection_throughput(benchmark):
    """Galloping intersection of two compressed lists."""
    from repro.ef.encoding import ef_encode
    from repro.ef.queries import ef_intersect

    rng = np.random.default_rng(6)
    a = np.unique(rng.integers(0, 10**6, size=500))
    b = np.unique(rng.integers(0, 10**6, size=50_000))
    shared = np.unique(rng.integers(0, 10**6, size=200))
    va = np.unique(np.concatenate([a, shared]))
    vb = np.unique(np.concatenate([b, shared]))
    sa, sb = ef_encode(va, quantum=64), ef_encode(vb, quantum=64)

    out = benchmark(ef_intersect, sa, sb)
    assert np.array_equal(out, np.intersect1d(va, vb))
