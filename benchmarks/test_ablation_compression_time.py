"""Sec. VIII-F — offline compression (encode) wall time.

Paper: EFG and Ligra+ compress the whole suite in minutes while CGR
takes 30-45 minutes on several graphs.  We measure our encoders' real
wall time: EFG's vectorized whole-graph encode vs the per-list
sequential CGR/Ligra+ encoders.
"""

import numpy as np
from conftest import run_once, save_records

from repro.bench.experiments import exp_compression_time
from repro.bench.report import format_table

GRAPHS = ("scc-lj", "orkut", "twitter")


def test_compression_time(benchmark, results_dir):
    records = run_once(benchmark, exp_compression_time, GRAPHS)
    print()
    print(
        format_table(
            ["graph", "EFG s", "CGR s", "Ligra+ s", "CGR/EFG", "Lg+/EFG"],
            [
                [r["name"], r["efg_s"], r["cgr_s"], r["ligra_s"],
                 r["cgr_vs_efg"], r["ligra_vs_efg"]]
                for r in records
            ],
            title="Sec. VIII-F: encode wall time (real, not simulated)",
        )
    )
    save_records(results_dir, "compression_time", records)

    # EFG encode must be the fastest by a clear margin (paper: minutes
    # vs half an hour for CGR).
    ratios = np.array([r["cgr_vs_efg"] for r in records])
    assert ratios.mean() > 2.0
