"""Delta-stepping vs frontier-relaxation SSSP ablation.

The paper's SSSP (Sec. VI-F) is plain frontier relaxation; production
GPU SSSP uses delta-stepping.  Both run on the same EFG backend, so
this measures how much of SSSP's cost is the algorithm rather than the
format — and includes a delta sweep showing the classic U-shape
(too-small delta: many buckets and phases; too-large: Bellman-Ford-like
redundant relaxations).
"""

import numpy as np
from conftest import run_once, save_records

from repro.bench.harness import encoded_suite_graph, make_backend, pick_sources
from repro.bench.report import format_table
from repro.formats.weights import generate_edge_weights
from repro.traversal.delta_stepping import delta_stepping_sssp
from repro.traversal.sssp import sssp

GRAPHS = ("scc-lj", "orkut", "twitter")


def _run():
    records = []
    for name in GRAPHS:
        enc = encoded_suite_graph(name)
        weights = generate_edge_weights(enc.graph, seed=13)
        backend = make_backend("efg", enc, with_weights=True)
        src = int(pick_sources(enc.graph, 1)[0])
        bf = sssp(backend, src, weights)
        ds = delta_stepping_sssp(backend, src, weights)
        finite = np.isfinite(bf.distances)
        assert np.allclose(
            ds.distances[finite], bf.distances[finite], atol=1e-5
        )
        records.append(
            {
                "name": name,
                "bf_relaxations": bf.edges_relaxed,
                "ds_relaxations": ds.edges_relaxed,
                "bf_ms": bf.runtime_ms,
                "ds_ms": ds.runtime_ms,
                "relaxation_saving": bf.edges_relaxed / max(ds.edges_relaxed, 1),
                "speedup": bf.runtime_ms / ds.runtime_ms,
                "delta": ds.delta,
            }
        )
    # Delta sweep on one graph.
    enc = encoded_suite_graph("twitter")
    weights = generate_edge_weights(enc.graph, seed=13)
    backend = make_backend("efg", enc, with_weights=True)
    src = int(pick_sources(enc.graph, 1)[0])
    sweep = []
    for delta in (0.01, 0.05, 0.1, 0.3, 1.0, 10.0):
        r = delta_stepping_sssp(backend, src, weights, delta=delta)
        sweep.append(
            {"delta": delta, "ms": r.runtime_ms,
             "relaxations": r.edges_relaxed,
             "buckets": r.buckets_processed}
        )
    return records, sweep


def test_delta_stepping(benchmark, results_dir):
    records, sweep = run_once(benchmark, _run)
    print()
    print(
        format_table(
            ["graph", "BF relax", "DS relax", "saving", "BF ms", "DS ms"],
            [
                [r["name"], r["bf_relaxations"], r["ds_relaxations"],
                 r["relaxation_saving"], r["bf_ms"], r["ds_ms"]]
                for r in records
            ],
            title="SSSP: frontier relaxation (paper) vs delta-stepping",
        )
    )
    print()
    print(
        format_table(
            ["delta", "ms", "relaxations", "buckets"],
            [[s["delta"], s["ms"], s["relaxations"], s["buckets"]]
             for s in sweep],
            title="Delta sweep (twitter)",
        )
    )
    save_records(results_dir, "delta_stepping",
                 {"runs": records, "sweep": sweep})

    # Delta-stepping must cut relaxations on every graph.
    for r in records:
        assert r["relaxation_saving"] > 1.2, r["name"]
    # The sweep's relaxation count grows toward huge delta
    # (Bellman-Ford limit).
    assert sweep[-1]["relaxations"] >= sweep[2]["relaxations"]
    # Tiny delta processes many more buckets.
    assert sweep[0]["buckets"] > 4 * sweep[-1]["buckets"]
