"""Fig. 9 — BFS performance relative to CSR (higher is better).

Derived from the Table II measurement; reads the cached records if the
Table II bench already ran in this session, otherwise recomputes a
representative subset.
"""

import numpy as np
from conftest import run_once, save_records

from repro.bench.experiments import exp_fig9, exp_tab2
from repro.bench.report import ascii_series

GRAPHS = (
    "scc-lj", "orkut", "urnd_26", "twitter", "sk-05", "kron_27",
    "gsh-15-h_sym", "sk-05_sym", "uk-07-05", "moliere-16",
)


def test_fig9_relative_performance(benchmark, results_dir):
    tab2 = run_once(benchmark, exp_tab2, GRAPHS, 2)
    records = exp_fig9(tab2)
    print()
    for fmt in ("efg", "cgr", "ligra"):
        print(
            ascii_series(
                [r["name"] for r in records],
                [r[f"{fmt}_vs_csr"] for r in records],
                unit="x",
                title=f"Fig. 9: {fmt.upper()} BFS speed relative to CSR",
            )
        )
        print()
    save_records(results_dir, "fig9", records)

    by_name = {r["name"]: r for r in records}
    sizes = {r["name"]: r["csr_bytes"] for r in tab2}
    from repro.bench.harness import SCALED_TITAN_XP

    cap = SCALED_TITAN_XP.memory_bytes
    # In-memory graphs: EFG below CSR but well above CGR (paper: 0.82x
    # vs CSR, 2.1x over CGR).
    small = [n for n in sizes if sizes[n] < 0.8 * cap]
    for name in small:
        r = by_name[name]
        assert r["efg_vs_csr"] < 1.3
        if r["cgr_vs_csr"]:
            assert r["efg_vs_csr"] > r["cgr_vs_csr"]
    # Out-of-core graphs: EFG multiples above CSR.
    big = [n for n in sizes if sizes[n] > cap]
    gains = [by_name[n]["efg_vs_csr"] for n in big]
    assert gains and float(np.mean(gains)) > 2.5
