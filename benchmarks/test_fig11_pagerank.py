"""Fig. 11 — PageRank GTEPS (50-iteration cap).

Paper shape: like BFS, the in-memory CSR implementation beats EFG when
everything fits (all nodes active every iteration means no frontier
effects), and EFG wins once CSR spills.
"""

import numpy as np
from conftest import run_once, save_records

from repro.bench.experiments import exp_fig11
from repro.bench.harness import SCALED_TITAN_XP
from repro.bench.report import format_table

GRAPHS = (
    "scc-lj", "orkut", "urnd_26", "twitter", "sk-05",
    "gsh-15-h_sym", "sk-05_sym",
)


def test_fig11_pagerank(benchmark, results_dir):
    records = run_once(benchmark, exp_fig11, GRAPHS, 50)
    print()
    print(
        format_table(
            ["graph", "CSR GTEPS", "EFG GTEPS", "iters"],
            [
                [r["name"], r["csr_gteps"], r["efg_gteps"],
                 r["efg_iterations"]]
                for r in records
            ],
            title="Fig. 11: PageRank (cap 50 iterations)",
        )
    )
    save_records(results_dir, "fig11", records)

    cap = SCALED_TITAN_XP.memory_bytes
    small = [r for r in records if 4.5 * r["num_edges"] < 0.7 * cap]
    big = [r for r in records if 4.5 * r["num_edges"] > 1.2 * cap]
    # In-memory: CSR ahead (paper Fig. 11).
    for r in small:
        assert r["csr_gteps"] >= 0.75 * r["efg_gteps"], r["name"]
    # Out-of-core CSR: EFG ahead.
    for r in big:
        assert r["efg_gteps"] > r["csr_gteps"], r["name"]
    # Iteration cap respected.
    assert all(r["efg_iterations"] <= 50 for r in records)
