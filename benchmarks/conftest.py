"""Shared benchmark plumbing.

Each benchmark file reproduces one table or figure: it runs the
corresponding ``repro.bench.experiments`` function once (timed through
pytest-benchmark's ``pedantic`` mode), prints the paper-style rows, and
saves the structured records to ``benchmarks/results/*.json`` so
EXPERIMENTS.md can be regenerated from the exact numbers.
"""

from __future__ import annotations

import json
import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def results_dir() -> str:
    """Directory where experiment records are stored."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


def save_records(results_dir: str, name: str, records) -> None:
    """Persist one experiment's structured records as JSON."""
    path = os.path.join(results_dir, f"{name}.json")
    with open(path, "w") as fh:
        json.dump(records, fh, indent=2, default=float)


def run_once(benchmark, fn, *args, **kwargs):
    """Time a heavyweight experiment exactly once through pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
