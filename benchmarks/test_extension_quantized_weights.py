"""Quantized-weight SSSP extension (the paper's out-of-scope item).

Sec. VI-F leaves weight compression out of scope; 8-bit codebook
quantization shrinks the O(|E|) weight array 4x, so SSSP stays in the
all-resident regime on graphs where float32 weights would stream
(Fig. 10 regions shift right) — at a bounded distance error.
"""

import numpy as np
from conftest import run_once, save_records

from repro.bench.harness import SCALED_TITAN_XP, encoded_suite_graph, make_backend, pick_sources
from repro.bench.report import format_table
from repro.core.efg import efg_encode
from repro.formats.quantized_weights import quantization_error, quantize_weights
from repro.formats.weights import generate_edge_weights
from repro.gpusim.device import TITAN_XP
from repro.traversal.backends import EFGBackend
from repro.traversal.sssp import sssp

GRAPHS = ("twitter", "sk-05", "gsh-15-h_sym")


def _run():
    records = []
    for name in GRAPHS:
        enc = encoded_suite_graph(name)
        graph = enc.graph
        weights = generate_edge_weights(graph, seed=17)
        quant = quantize_weights(weights)
        src = int(pick_sources(graph, 1)[0])

        f32 = EFGBackend(
            enc.efg, SCALED_TITAN_XP, weight_bytes=weights.nbytes
        )
        q8 = EFGBackend(enc.efg, SCALED_TITAN_XP, weight_bytes=quant.nbytes)
        exact = sssp(f32, src, weights)
        approx = sssp(q8, src, quant.dequantize())
        finite = np.isfinite(exact.distances)
        dist_err = float(
            np.abs(approx.distances[finite] - exact.distances[finite]).max()
        ) if finite.any() else 0.0
        werr = quantization_error(weights, quant)
        records.append(
            {
                "name": name,
                "f32_weights_resident": f32.engine.memory.plan()["weights"].residency.value == "device",
                "q8_weights_resident": q8.engine.memory.plan()["weights"].residency.value == "device",
                "f32_ms": exact.runtime_ms,
                "q8_ms": approx.runtime_ms,
                "speedup": exact.runtime_ms / approx.runtime_ms,
                "weight_rmse": werr["rmse"],
                "max_distance_error": dist_err,
            }
        )
    return records


def test_quantized_weights(benchmark, results_dir):
    records = run_once(benchmark, _run)
    print()
    print(
        format_table(
            ["graph", "f32 res.", "q8 res.", "f32 ms", "q8 ms", "speedup",
             "max dist err"],
            [
                [r["name"], str(r["f32_weights_resident"]),
                 str(r["q8_weights_resident"]), r["f32_ms"], r["q8_ms"],
                 r["speedup"], r["max_distance_error"]]
                for r in records
            ],
            title="SSSP with 8-bit quantized weights (weight compression)",
        )
    )
    save_records(results_dir, "quantized_weights", records)

    # Quantization keeps distances accurate everywhere.
    for r in records:
        assert r["max_distance_error"] < 0.1, r["name"]
        assert r["weight_rmse"] < 0.01, r["name"]
    # On at least one graph the 4x smaller weights flip residency and
    # speed SSSP up materially.
    flipped = [
        r for r in records
        if r["q8_weights_resident"] and not r["f32_weights_resident"]
    ]
    assert flipped, "expected a residency flip in the chosen suite"
    assert max(r["speedup"] for r in flipped) > 1.5
