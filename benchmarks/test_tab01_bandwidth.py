"""Table I — GPU bandwidth characteristics of the simulated devices."""

from conftest import run_once, save_records

from repro.bench.experiments import exp_tab1
from repro.bench.harness import SCALED_TITAN_XP, SCALED_V100
from repro.bench.report import format_table


def test_table1_bandwidths(benchmark, results_dir):
    rows = run_once(
        benchmark,
        lambda: [exp_tab1(SCALED_TITAN_XP), exp_tab1(SCALED_V100)],
    )
    print()
    print(
        format_table(
            ["GPU", "Mem (B, scaled)", "DtoD GB/s", "HtoD GB/s", "ratio"],
            [
                [r["gpu"], r["memory_bytes"], r["dtod_bw_gbs"], r["htod_bw_gbs"],
                 r["bandwidth_ratio"]]
                for r in rows
            ],
            title="Table I: bandwidth characteristics",
        )
    )
    save_records(results_dir, "tab1", rows)
    # Paper Table I: 417.4 vs 12.1 GB/s (~35x); V100 ~60x.
    assert abs(rows[0]["bandwidth_ratio"] - 35) < 1.5
    assert abs(rows[1]["bandwidth_ratio"] - 60) < 6
    assert abs(rows[0]["pcie_peak_gteps_32bit"] - 3.03) < 0.02
