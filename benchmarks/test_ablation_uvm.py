"""UVM vs zero-copy ablation (the Sec. II out-of-core mechanisms).

The paper adopts EMOGI's zero-copy streaming for its out-of-core
baseline and cites UVM (demand paging) as the alternative.  This bench
replays the *actual* memory accesses of one out-of-core CSR BFS level
structure against both mechanisms:

* zero-copy: cacheline-granularity transfers of exactly what is
  touched (our default cost model);
* UVM: 64 KiB page migrations through an LRU device cache.

Expected shape: the frontier-driven, scattered ``elist`` slices make
UVM migrate far more bytes than zero-copy moves — the reason EMOGI
(and the paper) stream instead of page.
"""

import numpy as np
from conftest import run_once, save_records

from repro.bench.harness import SCALED_TITAN_XP, encoded_suite_graph
from repro.bench.report import format_table
from repro.core.efg import csr_gather_indices
from repro.gpusim.cost import stream_transfer_bytes
from repro.gpusim.uvm import UVMSimulator
from repro.traversal.validate import reference_bfs_levels

GRAPHS = ("gsh-15-h_sym", "sk-05_sym", "com-frndster")


def _replay(name: str) -> dict:
    enc = encoded_suite_graph(name)
    graph = enc.graph
    device = SCALED_TITAN_XP
    # Device budget left for the spilled elist after working arrays.
    working = 13 * graph.num_nodes + 4 * (graph.num_nodes + 1)
    cache = max(device.memory_bytes - working, 2 * 64 * 1024)

    levels = reference_bfs_levels(graph, int(np.argmax(graph.degrees)))
    zero_copy_bytes = 0
    uvm = UVMSimulator(cache_bytes=cache)
    for depth in range(int(levels.max()) + 1):
        frontier = np.flatnonzero(levels == depth)
        edge_idx, _ = csr_gather_indices(
            graph.vlist[frontier], graph.degrees[frontier]
        )
        zero_copy_bytes += stream_transfer_bytes(
            edge_idx, 4, device.link_line_bytes
        )
        uvm.access(edge_idx, 4)
    return {
        "name": name,
        "edges": graph.num_edges,
        "zero_copy_mb": zero_copy_bytes / 1e6,
        "uvm_mb": uvm.migrated_bytes / 1e6,
        "uvm_penalty": uvm.migrated_bytes / max(zero_copy_bytes, 1),
        "uvm_evictions": uvm.evicted_pages,
    }


def test_uvm_vs_zero_copy(benchmark, results_dir):
    records = run_once(benchmark, lambda: [_replay(n) for n in GRAPHS])
    print()
    print(
        format_table(
            ["graph", "edges", "zero-copy MB", "UVM MB", "UVM/ZC",
             "evictions"],
            [
                [r["name"], r["edges"], r["zero_copy_mb"], r["uvm_mb"],
                 r["uvm_penalty"], r["uvm_evictions"]]
                for r in records
            ],
            title="Out-of-core elist traffic: zero-copy vs UVM paging",
        )
    )
    save_records(results_dir, "uvm", records)

    # UVM must move more data on frontier-driven access (the EMOGI
    # motivation the paper adopts).
    for r in records:
        assert r["uvm_penalty"] > 1.2, r["name"]
