"""Direction-optimizing BFS ablation (the Sec. VII trade-off).

The paper runs Ligra+ top-down for parity because direction
optimisation "requires storing in-edges in addition to out-edges,
which doubles the storage requirements for directed graphs".  This
bench measures both sides of that trade-off on EFG:

* hybrid BFS examines far fewer edges on dense-frontier (symmetrised)
  graphs, and
* for a *directed* graph the in-edge structure really does roughly
  double the compressed storage.
"""

import numpy as np
from conftest import run_once, save_records

from repro.bench.harness import SCALED_TITAN_XP, encoded_suite_graph
from repro.bench.report import format_table
from repro.core.efg import efg_encode
from repro.traversal.backends import EFGBackend
from repro.traversal.direction_optimizing import bfs_direction_optimizing

GRAPHS = ("scc-lj_sym", "urnd_26_sym", "sk-05_sym")


def _run():
    records = []
    for name in GRAPHS:
        enc = encoded_suite_graph(name)
        backend = EFGBackend(enc.efg, SCALED_TITAN_XP)
        src = int(np.argmax(enc.graph.degrees))
        top_down = bfs_direction_optimizing(
            backend, source=src, alpha=1e-12, beta=1e12
        )
        hybrid = bfs_direction_optimizing(backend, source=src)
        records.append(
            {
                "name": name,
                "td_edges": top_down.edges_examined,
                "hy_edges": hybrid.edges_examined,
                "edge_saving": top_down.edges_examined
                / max(hybrid.edges_examined, 1),
                "td_ms": top_down.runtime_ms,
                "hy_ms": hybrid.runtime_ms,
                "bottom_up_levels": hybrid.bottom_up_levels,
            }
        )
    # Storage side: in-edges for a *directed* graph double the footprint.
    directed = encoded_suite_graph("twitter")
    out_bytes = directed.efg.nbytes
    in_bytes = efg_encode(directed.graph.transposed()).nbytes
    storage = {
        "name": "twitter (directed)",
        "out_bytes": out_bytes,
        "in_bytes": in_bytes,
        "overhead": (out_bytes + in_bytes) / out_bytes,
    }
    return records, storage


def test_direction_optimizing(benchmark, results_dir):
    records, storage = run_once(benchmark, _run)
    print()
    print(
        format_table(
            ["graph", "TD edges", "hybrid edges", "saving", "TD ms",
             "hybrid ms", "BU levels"],
            [
                [r["name"], r["td_edges"], r["hy_edges"], r["edge_saving"],
                 r["td_ms"], r["hy_ms"], r["bottom_up_levels"]]
                for r in records
            ],
            title="Direction-optimizing BFS on EFG (Sec. VII extension)",
        )
    )
    print(
        f"\ndirected-graph storage for bottom-up: out {storage['out_bytes']:,} B"
        f" + in {storage['in_bytes']:,} B = {storage['overhead']:.2f}x"
        " (the paper's reason to run Ligra+ top-down)"
    )
    save_records(results_dir, "direction_opt", {"runs": records, "storage": storage})

    # Hybrid must engage bottom-up and cut examined edges on the
    # dense symmetrised graphs.
    for r in records:
        assert r["bottom_up_levels"] > 0, r["name"]
        assert r["edge_saving"] > 1.5, r["name"]
    # In-edge storage roughly doubles the directed footprint.
    assert 1.7 < storage["overhead"] < 2.3
