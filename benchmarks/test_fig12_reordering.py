"""Fig. 12 — reordering impact on compression ratio and BFS runtime.

Paper shape (per panel):
  (a) EFG compression virtually unchanged under every ordering, random
      included;
  (b, c) CGR / Ligra+ gain ~9-15% from BP and lose 18-32% under random
      ordering;
  (d-f) every format's *runtime* degrades under random ordering
      (0.65-0.8x) and improves with the locality ordering.
"""

import numpy as np
from conftest import run_once, save_records

from repro.bench.experiments import exp_fig12
from repro.bench.report import format_table

GRAPHS = ("sk-05", "twitter", "urnd_26")


def test_fig12_reordering(benchmark, results_dir):
    records = run_once(benchmark, exp_fig12, GRAPHS, 2)
    print()
    print(
        format_table(
            ["graph", "ordering", "EFG x", "CGR x", "Lg+ x",
             "EFG ms", "CGR ms", "Lg+ ms"],
            [
                [r["name"], r["ordering"], r["efg_ratio"], r["cgr_ratio"],
                 r["ligra_ratio"], r["efg_ms"], r["cgr_ms"], r["ligra_ms"]]
                for r in records
            ],
            title="Fig. 12: ordering vs compression ratio and BFS runtime",
        )
    )
    save_records(results_dir, "fig12", records)

    by = {(r["name"], r["ordering"]): r for r in records}
    for name in GRAPHS:
        orig = by[(name, "orig")]
        rand = by[(name, "random")]
        bp = by[(name, "bp")]
        halo = by[(name, "halo")]
        bp_rec = by[(name, "bp_from_random")]

        # (a) EFG compression is ordering-independent (<4% drift) —
        # including under the pathological random ordering.
        for r in (rand, bp, halo, bp_rec):
            assert abs(r["efg_ratio"] - orig["efg_ratio"]) / orig["efg_ratio"] < 0.04

    # (b, c) gap-code sensitivity, per base-order character:
    # sk-05's generator order is crawl-like (structured), so random
    # relabelling destroys CGR/Ligra+ compression (paper: 18-32%) and
    # BP recovers much of it from the scrambled state.
    sk_orig = by[("sk-05", "orig")]
    sk_rand = by[("sk-05", "random")]
    sk_rec = by[("sk-05", "bp_from_random")]
    assert sk_rand["cgr_ratio"] < 0.9 * sk_orig["cgr_ratio"]
    assert sk_rand["ligra_ratio"] < 0.92 * sk_orig["ligra_ratio"]
    assert sk_rec["cgr_ratio"] > 1.1 * sk_rand["cgr_ratio"]
    assert sk_rec["ligra_ratio"] > 1.05 * sk_rand["ligra_ratio"]

    # twitter follows the Graph500 convention of pre-permuted vertex
    # ids (its "orig" is already random), so the paper's BP *gain*
    # (9-15%) is the visible effect there.
    tw_orig = by[("twitter", "orig")]
    tw_bp = by[("twitter", "bp")]
    assert tw_bp["cgr_ratio"] > 1.05 * tw_orig["cgr_ratio"]
    assert tw_bp["ligra_ratio"] > 1.05 * tw_orig["ligra_ratio"]

    # urnd has no structure: every ordering compresses the same.
    ur = [by[("urnd_26", o)] for o in
          ("orig", "bp", "halo", "random", "bp_from_random")]
    spread = max(r["cgr_ratio"] for r in ur) / min(r["cgr_ratio"] for r in ur)
    assert spread < 1.05

    # (d-f) runtime: random ordering never helps EFG on the structured
    # graph (locality loss shows up in the measured streams).
    assert sk_rand["efg_ms"] >= 0.95 * sk_orig["efg_ms"]
