"""Sec. IX ablation — partitioned Elias-Fano on run-heavy lists.

Paper discussion: plain EF cannot exploit runs of contiguous ids; PEF
partitions lists and encodes runs implicitly.  Expectation: a large win
on web graphs (where CGR beats plain EFG in Fig. 8) and rough
neutrality on random graphs.
"""

from conftest import run_once, save_records

from repro.bench.experiments import exp_pef
from repro.bench.report import format_table


def test_pef_extension(benchmark, results_dir):
    records = run_once(benchmark, exp_pef, ("sk-05", "urnd_26", "web-longrun"))
    print()
    print(
        format_table(
            ["graph", "lists", "EF bytes", "fixed x", "runs x", "optimal x"],
            [
                [r["name"], r["lists"], r["ef_bytes"], r["fixed_gain"],
                 r["pef_gain"], r["optimal_gain"]]
                for r in records
            ],
            title="Sec. IX: partitioned EF vs plain EF (gain per strategy)",
        )
    )
    save_records(results_dir, "pef", records)

    by = {r["name"]: r for r in records}
    # Run-dominated lists (the Sec. IX motivating case): a large win.
    assert by["web-longrun"]["pef_gain"] > 1.8
    # Scaled web suite graph (short runs after scaling): roughly
    # break-even — the runs are too short to amortise skip metadata,
    # unlike at full scale where sk-05 lists carry hundred-long runs.
    assert by["sk-05"]["pef_gain"] > 0.95
    # Random short lists: bounded skip-metadata cost, no catastrophe.
    assert by["urnd_26"]["pef_gain"] > 0.65
    # Ordering of gains matches run content.
    assert (
        by["web-longrun"]["pef_gain"]
        > by["sk-05"]["pef_gain"]
        > by["urnd_26"]["pef_gain"]
    )
    # The DP partitioner never loses to the greedy strategies.
    for r in records:
        assert r["optimal_gain"] >= r["pef_gain"] * 0.999, r["name"]
        assert r["optimal_gain"] >= r["fixed_gain"] * 0.999, r["name"]
