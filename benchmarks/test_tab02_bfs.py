"""Table II — BFS size and runtime for CSR / CGR / EFG (GPU) and
Ligra+(TD) (CPU) across the full scaled suite on the scaled Titan Xp.
"""

import numpy as np
from conftest import run_once, save_records

from repro.bench.experiments import DEFAULT_FULL, exp_tab2
from repro.bench.harness import SCALED_TITAN_XP
from repro.bench.report import format_table

MIB = 1024 * 1024


def test_table2_bfs(benchmark, results_dir):
    records = run_once(benchmark, exp_tab2, DEFAULT_FULL, 2)
    print()
    rows = []
    for r in records:
        rows.append(
            [
                r["name"],
                f"{r['csr_bytes'] / MIB:.2f}",
                r["csr_ms"],
                f"{r['cgr_bytes'] / MIB:.2f}",
                r["cgr_ms"],
                f"{r['efg_bytes'] / MIB:.2f}",
                r["efg_ms"],
                r["ligra_ms"],
            ]
        )
    print(
        format_table(
            ["graph", "CSR MiB", "CSR ms", "CGR MiB", "CGR ms",
             "EFG MiB", "EFG ms", "Lg+TD ms"],
            rows,
            title="Table II: BFS on scaled Titan Xp (sizes scaled 1/2048)",
        )
    )
    save_records(results_dir, "tab2", records)

    cap = SCALED_TITAN_XP.memory_bytes
    in_mem = [r for r in records if r["csr_bytes"] < cap * 0.8]
    out_mem = [r for r in records if r["csr_bytes"] > cap]
    assert in_mem and out_mem

    # Paper: EFG ~0.82x of CSR when graphs fit.
    ratios = [r["csr_ms"] / r["efg_ms"] for r in in_mem]
    assert 0.4 < float(np.mean(ratios)) < 1.3

    # Paper: EFG 3.8x-6.5x over out-of-core CSR.
    speedups = [r["csr_ms"] / r["efg_ms"] for r in out_mem]
    assert float(np.mean(speedups)) > 2.5

    # Paper: EFG 1.45x-2x over CGR wherever CGR runs.
    cgr_ratios = [
        r["cgr_ms"] / r["efg_ms"] for r in records if r["cgr_ms"] is not None
    ]
    assert float(np.mean(cgr_ratios)) > 1.4

    # Paper: Ligra+(TD) far slower than in-memory GPU formats.
    lig = [r["ligra_ms"] / r["csr_ms"] for r in in_mem]
    assert float(np.mean(lig)) > 3.0
