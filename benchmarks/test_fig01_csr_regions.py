"""Fig. 1 — CSR BFS GTEPS vs graph size with three memory regions.

Reproduces the motivating experiment: cugraph-style CSR BFS across the
suite ordered by size, showing the sharp performance cliff where graphs
stop fitting in (scaled) device memory.
"""

import numpy as np
from conftest import run_once, save_records

from repro.bench.experiments import exp_fig1
from repro.bench.report import ascii_series

# Representative subset spanning all three regions (full suite works
# too — this keeps the bench under a minute).  kron_29 provides the
# region-3 point: it exceeds the scaled Titan Xp even after EFG
# compression, like the paper's moliere-16 did at full scale.
GRAPHS = (
    "scc-lj", "scc-lj_sym", "orkut", "urnd_26", "twitter", "sk-05",
    "kron_27", "gsh-15-h_sym", "sk-05_sym", "uk-07-05", "moliere-16",
    "kron_29",
)


def test_fig1_regions(benchmark, results_dir):
    records = run_once(benchmark, exp_fig1, GRAPHS, 2)
    print()
    print(
        ascii_series(
            [f"{r['name']} (R{r['region']})" for r in records],
            [r["gteps"] for r in records],
            unit=" GTEPS",
            title="Fig. 1: CSR BFS GTEPS (graphs ordered by size)",
        )
    )
    save_records(results_dir, "fig1", records)

    by_region: dict[int, list[float]] = {}
    for r in records:
        by_region.setdefault(r["region"], []).append(r["gteps"])
    # Region 1 (fits) must be dramatically faster than regions 2/3.
    assert 1 in by_region and 2 in by_region
    r1 = float(np.mean(by_region[1]))
    r23 = float(np.mean(by_region.get(2, []) + by_region.get(3, [])))
    assert r1 > 4 * r23
    # Out-of-core CSR is capped by the PCIe ceiling (3.03 GTEPS).
    assert all(g < 3.03 for g in by_region.get(2, []) + by_region.get(3, []))
