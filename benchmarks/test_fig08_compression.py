"""Fig. 8 — compression ratio vs CSR for EFG / Ligra+(TD) / CGR.

Paper shape: EFG ~1.55x and *consistent* across categories; CGR and
Ligra+ excel on web graphs but fall below EFG on social/other graphs.
(Absolute ratios run higher at miniature scale because 32-bit CSR ids
are oversized for small universes — see EXPERIMENTS.md.)
"""

import numpy as np
from conftest import run_once, save_records

from repro.bench.experiments import DEFAULT_FULL, exp_fig8
from repro.bench.report import format_table


def test_fig8_compression_ratio(benchmark, results_dir):
    records = run_once(benchmark, exp_fig8, DEFAULT_FULL)
    print()
    print(
        format_table(
            ["graph", "category", "EFG", "CGR", "Ligra+(TD)"],
            [
                [r["name"], r["category"], r["efg_ratio"], r["cgr_ratio"],
                 r["ligra_ratio"]]
                for r in records
            ],
            title="Fig. 8: compression ratio over CSR (higher is better)",
        )
    )
    save_records(results_dir, "fig8", records)

    def mean(cat, key):
        vals = [r[key] for r in records if cat in ("all", r["category"])]
        return float(np.mean(vals))

    print(
        f"\naverages: EFG {mean('all', 'efg_ratio'):.2f} "
        f"CGR {mean('all', 'cgr_ratio'):.2f} "
        f"Ligra+ {mean('all', 'ligra_ratio'):.2f} "
        "(paper: 1.55 / 1.65 / 1.59)"
    )

    # Everything actually compresses.
    for r in records:
        assert r["efg_ratio"] > 1.0, r["name"]
    # EFG consistency: smaller spread than CGR across the suite.
    efg = np.array([r["efg_ratio"] for r in records])
    cgr = np.array([r["cgr_ratio"] for r in records])
    assert efg.std() / efg.mean() < cgr.std() / cgr.mean()
    # Category shape: CGR best on web; EFG at least on par elsewhere.
    assert mean("web", "cgr_ratio") > mean("web", "efg_ratio")
    assert mean("social", "efg_ratio") > 0.95 * mean("social", "cgr_ratio")
    assert mean("other", "efg_ratio") > mean("other", "ligra_ratio")
