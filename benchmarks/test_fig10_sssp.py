"""Fig. 10 — SSSP GTEPS with weight streaming (five regions).

The O(|E|) float32 weight array is uncompressed in both formats
(Sec. VI-F), so SSSP leaves the all-resident regime much earlier than
BFS.  The regions we assert: where EFG keeps more state resident than
CSR it wins (paper regions 2 and 4: 1.41x / 1.85x); where both stream
weights the two converge (region 3).
"""

import numpy as np
from conftest import run_once, save_records

from repro.bench.experiments import exp_fig10
from repro.bench.report import format_table

GRAPHS = (
    "scc-lj", "scc-lj_sym", "orkut", "urnd_26", "twitter",
    "sk-05", "gsh-15-h_sym", "sk-05_sym",
)


def _region(row: dict) -> int:
    """Fig. 10 region from measured residency."""
    if row["csr_weights_resident"]:
        return 1
    if row["efg_weights_resident"]:
        return 2
    if row["csr_structure_resident"]:
        return 3
    if row["efg_structure_resident"]:
        return 4
    return 5


def test_fig10_sssp(benchmark, results_dir):
    records = run_once(benchmark, exp_fig10, GRAPHS, 2)
    for r in records:
        r["region"] = _region(r)
    print()
    print(
        format_table(
            ["graph", "region", "CSR GTEPS", "EFG GTEPS", "EFG/CSR"],
            [
                [r["name"], r["region"], r["csr_gteps"], r["efg_gteps"],
                 r["csr_ms"] / r["efg_ms"]]
                for r in records
            ],
            title="Fig. 10: SSSP with streamed weights",
        )
    )
    save_records(results_dir, "fig10", records)

    # Regions where EFG keeps more resident: EFG wins.
    adv = [r for r in records if r["region"] in (2, 4)]
    if adv:
        gains = [r["csr_ms"] / r["efg_ms"] for r in adv]
        assert float(np.mean(gains)) > 1.15  # paper: 1.41x / 1.85x
    # Region 1 / 3: near parity (both resident / both stream weights).
    par = [r for r in records if r["region"] in (1, 3)]
    if par:
        ratios = [r["csr_ms"] / r["efg_ms"] for r in par]
        assert 0.5 < float(np.mean(ratios)) < 2.0
    # The suite must actually exercise several regions.
    assert len({r["region"] for r in records}) >= 2
