"""Table III — BFS on the scaled V100 (32 GiB, ~60x bandwidth gap).

Paper shape: with more capacity, mid-size graphs move back in-memory
(CSR recovers), while the largest kron graphs still spill — and the
bigger internal/external bandwidth disparity makes compression *more*
valuable there (6.55x over out-of-core CSR; 1.48x over CGR).
"""

import numpy as np
from conftest import run_once, save_records

from repro.bench.experiments import exp_tab3
from repro.bench.harness import SCALED_V100
from repro.bench.report import format_table

MIB = 1024 * 1024


def test_table3_v100(benchmark, results_dir):
    records = run_once(benchmark, exp_tab3)
    print()
    print(
        format_table(
            ["graph", "CSR MiB", "CSR ms", "CGR ms", "EFG ms"],
            [
                [r["name"], f"{r['csr_bytes'] / MIB:.2f}", r["csr_ms"],
                 r["cgr_ms"], r["efg_ms"]]
                for r in records
            ],
            title="Table III: BFS on scaled V100",
        )
    )
    save_records(results_dir, "tab3", records)

    cap = SCALED_V100.memory_bytes
    in_mem = [r for r in records if r["csr_bytes"] < 0.8 * cap]
    out_mem = [r for r in records if r["csr_bytes"] > cap]
    assert in_mem, "V100 capacity should fit the mid-size graphs again"
    assert out_mem, "the kron_28/29 class must still spill"

    # Paper: EFG 0.67x of CSR in-memory on the V100.
    ratios = [r["csr_ms"] / r["efg_ms"] for r in in_mem]
    assert 0.35 < float(np.mean(ratios)) < 1.2

    # Paper: 6.55x over out-of-core CSR (higher than Titan Xp's 3.8x
    # because the bandwidth gap is larger).
    speedups = [r["csr_ms"] / r["efg_ms"] for r in out_mem]
    assert float(np.mean(speedups)) > 3.0

    # Paper: EFG 1.48x over CGR on the V100.
    cgr = [r["cgr_ms"] / r["efg_ms"] for r in records if r["cgr_ms"]]
    assert float(np.mean(cgr)) > 1.2
