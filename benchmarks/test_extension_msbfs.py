"""Decode amortization extension: hot-list cache + bit-parallel MSBFS.

The paper pays ~70 instructions per edge to decode EFG lists at
traversal time (Sec. VI-B) — and the baseline traversals re-pay that
price on every frontier visit of every query.  This benchmark measures
the two amortization layers added on top:

* a byte-budgeted :class:`~repro.core.listcache.DecodedListCache` that
  keeps hot decoded lists resident on chip, and
* :func:`~repro.traversal.msbfs.msbfs`, which packs 64 sources into
  per-vertex uint64 masks so one decode of each frontier list serves
  every active source.

Reported per graph: total list decodes, amortized per-source simulated
time and GTEPS for sequential single-source BFS vs. the 64-source
bit-parallel batch, plus the cache hit rate.  Set ``REPRO_BENCH_QUICK=1``
to shrink the graphs for CI smoke runs.
"""

import os

import numpy as np
from conftest import run_once, save_records

from repro.core.efg import efg_encode
from repro.core.listcache import DecodedListCache
from repro.datasets.random_graph import uniform_random_graph
from repro.datasets.rmat import rmat_graph
from repro.bench.report import format_table
from repro.gpusim.device import TITAN_XP
from repro.traversal.backends import EFGBackend
from repro.traversal.bfs import bfs
from repro.traversal.msbfs import msbfs

QUICK = bool(int(os.environ.get("REPRO_BENCH_QUICK", "0")))
SCALE = 11 if QUICK else 13
NUM_SOURCES = 64
CACHE_BYTES = 1 << 21  # 2 MiB of modeled on-chip residency
DEVICE = TITAN_XP.scaled(2048)


def _graphs():
    yield rmat_graph(scale=SCALE, edge_factor=16, seed=42, name=f"rmat_{SCALE}")
    yield uniform_random_graph(
        num_nodes=1 << SCALE, num_edges=16 << SCALE, seed=42,
        name=f"urnd_{SCALE}",
    )


def _pick_sources(graph):
    rng = np.random.default_rng(7)
    candidates = np.flatnonzero(graph.degrees > 0)
    return rng.choice(candidates, size=NUM_SOURCES, replace=False)


def _run():
    records = []
    for graph in _graphs():
        efg = efg_encode(graph)
        sources = _pick_sources(graph)

        seq_backend = EFGBackend(efg, DEVICE)
        seq_seconds = 0.0
        seq_edges = 0
        for s in sources:
            r = bfs(seq_backend, int(s))
            seq_seconds += r.sim_seconds
            seq_edges += r.edges_traversed
        seq_decodes = seq_backend.lists_decoded

        ms_backend = EFGBackend(efg, DEVICE)
        ms_backend.attach_cache(DecodedListCache(budget_bytes=CACHE_BYTES))
        ms = msbfs(ms_backend, sources)
        assert ms.edges_traversed == seq_edges

        records.append(
            {
                "name": graph.name,
                "seq_decodes": seq_decodes,
                "ms_decodes": ms.lists_decoded,
                "decode_ratio": seq_decodes / max(1, ms.lists_decoded),
                "seq_us_per_source": seq_seconds / NUM_SOURCES * 1e6,
                "ms_us_per_source": ms.seconds_per_source * 1e6,
                "speedup": (seq_seconds / NUM_SOURCES) / ms.seconds_per_source,
                "seq_gteps": seq_edges / seq_seconds / 1e9,
                "ms_gteps": ms.gteps,
                "cache_hits": ms.cache_stats.hits,
                "cache_misses": ms.cache_stats.misses,
                "cache_hit_rate": ms.cache_stats.hit_rate,
                "cache_bytes_saved": ms.cache_stats.bytes_saved,
            }
        )
    return records


def test_msbfs_amortization(benchmark, results_dir):
    records = run_once(benchmark, _run)
    print()
    print(
        format_table(
            ["graph", "seq dec", "ms dec", "dec x", "seq us/src",
             "ms us/src", "speedup", "GTEPS", "hit%"],
            [
                [r["name"], r["seq_decodes"], r["ms_decodes"],
                 r["decode_ratio"], r["seq_us_per_source"],
                 r["ms_us_per_source"], r["speedup"], r["ms_gteps"],
                 100 * r["cache_hit_rate"]]
                for r in records
            ],
            title=f"{NUM_SOURCES}-source bit-parallel BFS + decoded-list "
                  f"cache vs sequential BFS (EFG)",
        )
    )
    for r in records:
        print(
            f"{r['name']}: cache {r['cache_hits']}/{r['cache_hits'] + r['cache_misses']}"
            f" hits, {r['cache_bytes_saved']:,.0f} compressed bytes saved"
        )
    save_records(results_dir, "msbfs", records)

    for r in records:
        # Acceptance: one decode serves many sources (>= 5x fewer) and
        # the amortized per-source simulated time strictly improves.
        assert r["decode_ratio"] >= 5.0, r
        assert r["ms_us_per_source"] < r["seq_us_per_source"], r
        assert r["cache_hits"] > 0, r
