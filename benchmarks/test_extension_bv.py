"""BV / WebGraph extension — completing the Sec. VII comparison.

BV is "perhaps the most widely-used method for compressing large
web-graphs" but was never ported to GPUs because its reference chains
serialize decoding across *lists*.  This bench places our BV-style
encoder next to EFG/CGR/Ligra+ on one graph per category, showing what
EFG trades for GPU decodability — and that BV's edge only exists where
consecutive lists are similar (web), not on social/random graphs.
"""

import numpy as np
from conftest import run_once, save_records

from repro.bench.harness import encoded_suite_graph
from repro.bench.report import format_table
from repro.formats.bv import bv_encode

GRAPHS = ("sk-05", "twitter", "urnd_26")


def _run():
    records = []
    for name in GRAPHS:
        enc = encoded_suite_graph(name)
        csr = enc.csr.nbytes
        bv = bv_encode(enc.graph)
        # Spot-check correctness on a few lists.
        for v in range(0, enc.graph.num_nodes, enc.graph.num_nodes // 7):
            assert np.array_equal(bv.neighbours(v), enc.graph.neighbours(v))
        records.append(
            {
                "name": name,
                "bv_ratio": csr / bv.nbytes,
                "efg_ratio": csr / enc.efg.nbytes,
                "cgr_ratio": csr / enc.cgr.nbytes,
                "ligra_ratio": csr / enc.ligra.nbytes,
            }
        )
    return records


def test_bv_comparison(benchmark, results_dir):
    records = run_once(benchmark, _run)
    print()
    print(
        format_table(
            ["graph", "BV", "EFG", "CGR", "Ligra+"],
            [
                [r["name"], r["bv_ratio"], r["efg_ratio"], r["cgr_ratio"],
                 r["ligra_ratio"]]
                for r in records
            ],
            title="Compression ratio incl. BV (no GPU decode path exists "
                  "for BV)",
        )
    )
    save_records(results_dir, "bv", records)

    by = {r["name"]: r for r in records}
    # BV competitive on the web graph...
    assert by["sk-05"]["bv_ratio"] > by["sk-05"]["efg_ratio"] * 0.85
    # ...but loses its reference advantage off web structure.
    assert by["urnd_26"]["bv_ratio"] < by["urnd_26"]["efg_ratio"] * 1.1
