"""Forward-pointer quantum sweep (the paper fixes k = 512).

The trade-off the paper's choice encodes: smaller k means more
forward-pointer storage (worse compression) but tighter select windows;
k = 512 makes the pointer overhead negligible.  At miniature scale the
runtime is insensitive (few lists exceed one quantum), so the
interesting curve is the storage one.
"""

from conftest import run_once, save_records

from repro.bench.experiments import exp_quantum
from repro.bench.report import format_table


def test_quantum_sweep(benchmark, results_dir):
    records = run_once(benchmark, exp_quantum, "twitter")
    print()
    print(
        format_table(
            ["k", "EFG bytes", "ratio vs CSR", "BFS ms"],
            [
                [r["quantum"], r["efg_bytes"], r["ratio"], r["runtime_ms"]]
                for r in records
            ],
            title="Forward-pointer quantum sweep (twitter, scaled)",
        )
    )
    save_records(results_dir, "quantum", records)

    sizes = [r["efg_bytes"] for r in records]
    # Pointer storage shrinks monotonically with k.
    assert all(a >= b for a, b in zip(sizes, sizes[1:]))
    # At k = 512 (paper default) the overhead is negligible vs k = 1024.
    k512 = next(r for r in records if r["quantum"] == 512)
    k1024 = next(r for r in records if r["quantum"] == 1024)
    assert k512["efg_bytes"] <= 1.01 * k1024["efg_bytes"]
